/**
 * @file
 * Randomized property and fuzz tests: the invariants that must hold
 * for *any* input, not just the benchmark suite.
 *
 *  - DesignNetwork: arbitrary interleavings of split / move / setRoute
 *    keep every internal invariant intact.
 *  - Methodology: any random clique set yields a Theorem-1-clean,
 *    strongly connected design whose routes all materialize.
 *  - Simulator: flits are conserved (everything injected is delivered
 *    exactly once), channels stay FIFO, results are deterministic.
 *  - Serve protocol: parsing is total — truncated, mutated, garbage
 *    and oversized request lines always map to a structured error,
 *    never an abort, a throw, or a half-populated request.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "coh/coherence.hpp"
#include "core/methodology.hpp"
#include "graph/connectivity.hpp"
#include "graph/digraph.hpp"
#include "serve/protocol.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "trace/nas_generators.hpp"
#include "util/rng.hpp"

using namespace minnoc;
using namespace minnoc::core;

namespace {

/** Random clique set: phases of random partial permutations. */
CliqueSet
randomCliques(std::uint32_t procs, std::uint32_t phases, Rng &rng)
{
    CliqueSet ks(procs);
    for (std::uint32_t k = 0; k < phases; ++k) {
        std::vector<ProcId> perm(procs);
        for (ProcId p = 0; p < procs; ++p)
            perm[p] = p;
        rng.shuffle(perm);
        std::vector<Comm> comms;
        for (ProcId p = 0; p < procs; ++p) {
            if (perm[p] != p && rng.chance(0.8))
                comms.emplace_back(p, perm[p]);
        }
        if (!comms.empty())
            ks.addClique(comms);
    }
    if (ks.numCliques() == 0)
        ks.addClique({Comm(0, 1)});
    return ks;
}

} // namespace

class FuzzSeeds : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzSeeds, DesignNetworkOpsKeepInvariants)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    CliqueSet ks = randomCliques(12, 4, rng);
    DesignNetwork net(ks);

    for (int op = 0; op < 120; ++op) {
        const auto kind = rng.below(3);
        if (kind == 0) {
            // Split a random splittable switch.
            std::vector<SwitchId> splittable;
            for (SwitchId s = 0; s < net.numSwitches(); ++s) {
                if (net.procsOf(s).size() >= 2)
                    splittable.push_back(s);
            }
            if (!splittable.empty())
                net.splitSwitch(
                    splittable[rng.below(splittable.size())], rng);
        } else if (kind == 1) {
            // Move a random proc to a random switch.
            const auto p =
                static_cast<ProcId>(rng.below(net.numProcs()));
            const auto s =
                static_cast<SwitchId>(rng.below(net.numSwitches()));
            net.moveProc(p, s);
        } else {
            // Reroute a random comm along a random simple walk.
            const auto c =
                static_cast<CommId>(rng.below(ks.numComms()));
            const auto &comm = ks.comm(c);
            const SwitchId from = net.homeOf(comm.src);
            const SwitchId to = net.homeOf(comm.dst);
            std::vector<SwitchId> route{from};
            if (from != to) {
                // Random middle switch not equal to endpoints.
                if (net.numSwitches() > 2 && rng.chance(0.5)) {
                    const auto mid = static_cast<SwitchId>(
                        rng.below(net.numSwitches()));
                    if (mid != from && mid != to)
                        route.push_back(mid);
                }
                route.push_back(to);
            }
            net.setRoute(c, route);
        }
        net.checkInvariants();
    }
}

TEST_P(FuzzSeeds, MethodologyOnRandomPatterns)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
    const std::uint32_t procs = 6 + static_cast<std::uint32_t>(
                                        rng.below(10));
    CliqueSet ks = randomCliques(procs, 3, rng);

    MethodologyConfig cfg;
    cfg.partitioner.constraints.maxDegree = 6;
    cfg.restarts = 4;
    const auto outcome = runMethodology(ks, cfg);

    // Theorem 1 always holds regardless of feasibility.
    EXPECT_TRUE(outcome.violations.empty());

    // The switch graph is strongly connected over provisioned channels.
    graph::Digraph sg(outcome.design.numSwitches);
    for (const auto &p : outcome.design.pipes) {
        if (p.linksFwd)
            sg.addEdge(p.key.a, p.key.b);
        if (p.linksBwd)
            sg.addEdge(p.key.b, p.key.a);
    }
    EXPECT_TRUE(graph::isStronglyConnected(sg));

    // It must materialize into a routable topology.
    const auto plan = topo::planFloor(outcome.design);
    const auto net = topo::buildFromDesign(outcome.design, plan);
    EXPECT_NO_FATAL_FAILURE(
        topo::validateRouting(*net.topo, *net.routing));
}

TEST_P(FuzzSeeds, SimulatorConservesPackets)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
    const std::uint32_t ranks = 8;
    const auto mesh = topo::buildMesh(ranks);
    sim::Network net(*mesh.topo, *mesh.routing, sim::SimConfig{});

    // Random burst of packets.
    const std::uint32_t count =
        20 + static_cast<std::uint32_t>(rng.below(60));
    std::map<std::pair<core::ProcId, core::ProcId>,
             std::vector<sim::PacketId>>
        perChannel;
    for (std::uint32_t i = 0; i < count; ++i) {
        const auto s = static_cast<core::ProcId>(rng.below(ranks));
        auto d = static_cast<core::ProcId>(rng.below(ranks - 1));
        if (d >= s)
            ++d;
        const auto bytes = 4 + rng.below(512);
        const auto id = net.enqueue(s, d, bytes, 0, 0);
        perChannel[{d, s}].push_back(id);
    }

    sim::Cycle now = 0;
    while (!net.idle() && now < 1'000'000)
        net.step(++now);
    ASSERT_TRUE(net.idle());

    // Conservation: every packet delivered exactly once, in channel
    // FIFO order.
    EXPECT_EQ(net.stats().packetsDelivered, count);
    for (const auto &[channel, ids] : perChannel) {
        for (const auto id : ids) {
            EXPECT_TRUE(net.hasDelivered(channel.first, channel.second));
            EXPECT_EQ(net.consumeDelivered(channel.first,
                                           channel.second),
                      id);
        }
        EXPECT_FALSE(net.hasDelivered(channel.first, channel.second));
    }
}

TEST_P(FuzzSeeds, SimulatorIsDeterministic)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 3);
    trace::Trace tr("fuzz", 8);
    std::map<std::pair<core::ProcId, core::ProcId>,
             std::vector<std::uint32_t>>
        sent;
    std::uint32_t call = 0;
    for (int i = 0; i < 40; ++i) {
        const auto s = static_cast<core::ProcId>(rng.below(8));
        auto d = static_cast<core::ProcId>(rng.below(7));
        if (d >= s)
            ++d;
        tr.push(s, trace::TraceOp::compute(
                       static_cast<std::int64_t>(rng.below(200))));
        tr.push(s, trace::TraceOp::send(d, 16 + rng.below(256), call));
        sent[{s, d}].push_back(call);
        ++call;
    }
    for (const auto &[channel, calls] : sent) {
        for (const auto c : calls) {
            // Bytes irrelevant for matching; engine matches per channel
            // FIFO. Replays need exact byte matches for validate.
            (void)c;
        }
    }
    // Post receives per channel (bytes must mirror the sends).
    for (core::ProcId s = 0; s < 8; ++s) {
        for (const auto &op : tr.timeline(s)) {
            if (op.kind == trace::OpKind::Send)
                tr.push(op.peer,
                        trace::TraceOp::recv(s, op.bytes, op.callId));
        }
    }
    tr.validateMatching();

    const auto torus = topo::buildTorus(8);
    const auto a = sim::runTrace(tr, *torus.topo, *torus.routing);
    const auto b = sim::runTrace(tr, *torus.topo, *torus.routing);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.commTime, b.commTime);
    EXPECT_EQ(a.packetsDelivered, b.packetsDelivered);
}

// ------------------------------------------------- serve request parser

namespace {

/** A well-formed submission line to mutate and truncate. */
std::string
validServeRequest()
{
    trace::NasConfig cfg;
    cfg.ranks = 8;
    cfg.iterations = 1;
    const auto tr = trace::generateCG(cfg);
    std::ostringstream traceOs;
    tr.save(traceOs);
    std::ostringstream os;
    os << "{\"id\": \"fuzz\", \"cmd\": \"design\", \"trace\": \""
       << serve::jsonEscape(traceOs.str())
       << "\", \"restarts\": 2, \"seed\": 1}";
    return os.str();
}

/**
 * The totality property: any line maps to a request or a structured
 * error with a taxonomy code and a non-empty message. Never throws.
 */
void
expectTotal(const std::string &line)
{
    serve::RequestError error;
    std::optional<serve::Request> req;
    ASSERT_NO_THROW(req = serve::parseRequest(line, error))
        << "parser threw on " << line.size() << "-byte input";
    if (!req.has_value()) {
        EXPECT_FALSE(error.message.empty());
        EXPECT_NE(serve::errorCodeName(error.code), nullptr);
    }
}

} // namespace

TEST_P(FuzzSeeds, ServeParserIsTotalOnGarbageBytes)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 11);
    for (int round = 0; round < 200; ++round) {
        std::string line(rng.below(512), '\0');
        for (auto &c : line)
            c = static_cast<char>(rng.below(256));
        expectTotal(line);
    }
    // JSON-ish garbage: balanced-looking but meaningless structures.
    const char *shards[] = {"{",      "}",    "[",     "]",  "\"",
                            ":",      ",",    "null",  "{}", "1e999",
                            "\\u00",  "cmd",  "design"};
    for (int round = 0; round < 200; ++round) {
        std::string line;
        const auto parts = 1 + rng.below(24);
        for (std::uint64_t i = 0; i < parts; ++i)
            line += shards[rng.below(std::size(shards))];
        expectTotal(line);
    }
}

TEST(ServeFuzz, TruncatedSubmissionsAlwaysParseError)
{
    const auto full = validServeRequest();
    serve::RequestError error;
    ASSERT_TRUE(serve::parseRequest(full, error).has_value());

    // Every proper prefix is rejected cleanly (step keeps runtime
    // sane; boundary prefixes near the end are covered exactly).
    for (std::size_t len = 0; len < full.size();
         len += (len + 64 < full.size() ? 37 : 1)) {
        const auto prefix = full.substr(0, len);
        serve::RequestError e;
        const auto req = serve::parseRequest(prefix, e);
        EXPECT_FALSE(req.has_value())
            << "truncated prefix of " << len << " bytes parsed";
        EXPECT_FALSE(e.message.empty());
    }
}

TEST_P(FuzzSeeds, MutatedSubmissionsNeverCrashTheParser)
{
    const auto full = validServeRequest();
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
    for (int round = 0; round < 100; ++round) {
        std::string line = full;
        const auto flips = 1 + rng.below(8);
        for (std::uint64_t i = 0; i < flips; ++i)
            line[rng.below(line.size())] =
                static_cast<char>(rng.below(256));
        expectTotal(line);
    }
}

TEST(ServeFuzz, OversizedSubmissionIsRejectedNotBuffered)
{
    std::string line(serve::kMaxRequestBytes + 1, 'a');
    serve::RequestError error;
    EXPECT_FALSE(serve::parseRequest(line, error).has_value());
    EXPECT_EQ(error.code, serve::ErrorCode::ParseError);
    EXPECT_FALSE(error.message.empty());
}

TEST(ServeFuzz, HostileParameterRangesAreValidationErrors)
{
    const char *lines[] = {
        // Grid big enough to be a denial of service.
        "{\"id\": \"g\", \"cmd\": \"explore\", \"trace\": \"t\","
        " \"degrees\": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,"
        "19,20,21,22,23,24,25,26,27,28,29,30,31,32],"
        " \"seeds\": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,"
        "19,20,21,22,23,24,25,26,27,28,29,30,31,32],"
        " \"vcs\": [1,2,3,4,5,6,7,8]}",
        // Value outside the representable range.
        "{\"id\": \"r\", \"cmd\": \"design\", \"trace\": \"t\","
        " \"restarts\": 18446744073709551616}",
        // Wrong types everywhere.
        "{\"id\": \"w\", \"cmd\": \"design\", \"trace\": 7}",
        "{\"id\": \"x\", \"cmd\": [\"design\"], \"trace\": \"t\"}",
        // Absurd deadline.
        "{\"id\": \"d\", \"cmd\": \"design\", \"trace\": \"t\","
        " \"deadline_ms\": -5}",
    };
    for (const auto *line : lines) {
        serve::RequestError error;
        EXPECT_FALSE(serve::parseRequest(line, error).has_value())
            << line;
        EXPECT_EQ(error.code, serve::ErrorCode::ValidationError)
            << line;
    }
}

// ------------------------------------------------- dse_job request fuzz

namespace {

/** A well-formed coordinator-style dse_job line to mutate. */
std::string
validDseJobLine()
{
    trace::NasConfig cfg;
    cfg.ranks = 8;
    cfg.iterations = 1;
    const auto tr = trace::generateCG(cfg);
    std::ostringstream traceOs;
    tr.save(traceOs);
    std::ostringstream os;
    os << "{\"id\": \"3\", \"cmd\": \"dse_job\", \"attempt\": 1,"
          " \"job_index\": 3, \"sig\": \"d=4;r=2;s=1\","
          " \"max_degree\": 4, \"restarts\": 2, \"seed\": 1,"
          " \"unidirectional\": 0, \"vcs\": 2, \"vc_depth\": 4,"
          " \"phase_window\": 0, \"reconfig_cost\": 0,"
          " \"threshold\": 0.35, \"min_phase_windows\": 2,"
          " \"matrix_weight\": 0.5, \"power\": \"activity\","
          " \"deadline_ms\": 10000, \"trace\": \""
       << serve::jsonEscape(traceOs.str()) << "\"}";
    return os.str();
}

} // namespace

TEST(ServeFuzz, WellFormedDseJobParses)
{
    serve::RequestError error;
    const auto req = serve::parseRequest(validDseJobLine(), error);
    ASSERT_TRUE(req.has_value()) << error.message;
    EXPECT_EQ(req->cmd, serve::Cmd::DseJob);
    EXPECT_EQ(req->attempt, 1u);
    EXPECT_EQ(req->jobIndex, 3u);
    EXPECT_EQ(req->sig, "d=4;r=2;s=1");
    EXPECT_EQ(req->maxDegree, 4u);
    EXPECT_EQ(req->vcs, 2u);
    EXPECT_EQ(req->deadlineMs, 10'000);
    EXPECT_EQ(req->power, "activity");
}

TEST_P(FuzzSeeds, MutatedDseJobsNeverCrashTheParser)
{
    const auto full = validDseJobLine();
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 48611 + 7);
    for (int round = 0; round < 100; ++round) {
        std::string line = full;
        const auto flips = 1 + rng.below(8);
        for (std::uint64_t i = 0; i < flips; ++i)
            line[rng.below(line.size())] =
                static_cast<char>(rng.below(256));
        expectTotal(line);
    }
}

TEST(ServeFuzz, TruncatedDseJobsAlwaysParseError)
{
    const auto full = validDseJobLine();
    for (std::size_t len = 0; len < full.size();
         len += (len + 64 < full.size() ? 37 : 1)) {
        serve::RequestError e;
        const auto req = serve::parseRequest(full.substr(0, len), e);
        EXPECT_FALSE(req.has_value())
            << "truncated dse_job prefix of " << len << " bytes parsed";
        EXPECT_FALSE(e.message.empty());
    }
}

TEST(ServeFuzz, HostileDseJobFieldsAreValidationErrors)
{
    const std::string head =
        "{\"id\": \"j\", \"cmd\": \"dse_job\", \"trace\": \"t\","
        " \"sig\": \"s\"";
    const char *tails[] = {
        // Missing sig entirely (strip it by overriding cmd only).
        nullptr, // placeholder; handled separately below
        // Unknown / misplaced fields from sibling commands.
        ", \"degrees\": [4]}",       // explore-only key
        ", \"window\": 8}",          // phase_job-only key
        ", \"expected_phases\": 3}", // phase_job-only key
        ", \"bogus\": 1}",
        // Out-of-range scalars.
        ", \"attempt\": 0}",
        ", \"attempt\": 3}",
        ", \"vcs\": 0}",
        ", \"vcs\": 33}",
        ", \"vc_depth\": 65}",
        ", \"max_degree\": 65}",
        ", \"matrix_weight\": 1.5}",
        ", \"reconfig_cost\": -1}",
        ", \"seed\": 18446744073709551616}",
        // Wrong types.
        ", \"job_index\": \"three\"}",
        ", \"unidirectional\": [0]}",
        // Power tier: only the two model names are valid.
        ", \"power\": \"nuclear\"}",
        ", \"power\": \"\"}",
        ", \"power\": 1}",
        ", \"power\": [\"static\"]}",
    };
    for (const auto *tail : tails) {
        if (!tail)
            continue;
        serve::RequestError error;
        const std::string line = head + tail;
        EXPECT_FALSE(serve::parseRequest(line, error).has_value())
            << line;
        EXPECT_EQ(error.code, serve::ErrorCode::ValidationError)
            << line;
    }

    // sig is mandatory and bounded: absent, empty and oversized all
    // fail closed.
    const char *sigLines[] = {
        "{\"id\": \"j\", \"cmd\": \"dse_job\", \"trace\": \"t\"}",
        "{\"id\": \"j\", \"cmd\": \"dse_job\", \"trace\": \"t\","
        " \"sig\": \"\"}",
    };
    for (const auto *line : sigLines) {
        serve::RequestError error;
        EXPECT_FALSE(serve::parseRequest(line, error).has_value())
            << line;
        EXPECT_EQ(error.code, serve::ErrorCode::ValidationError);
    }
    serve::RequestError error;
    const std::string fat =
        "{\"id\": \"j\", \"cmd\": \"dse_job\", \"trace\": \"t\","
        " \"sig\": \"" +
        std::string(2000, 'x') + "\"}";
    EXPECT_FALSE(serve::parseRequest(fat, error).has_value());
    EXPECT_EQ(error.code, serve::ErrorCode::ValidationError);

    // phase_job has its own allowlist: dse_job-only keys are rejected.
    const std::string pj =
        "{\"id\": \"p\", \"cmd\": \"phase_job\", \"trace\": \"t\","
        " \"sig\": \"s\", \"window\": 8, \"unidirectional\": 0}";
    serve::RequestError pe;
    EXPECT_FALSE(serve::parseRequest(pj, pe).has_value());
    EXPECT_EQ(pe.code, serve::ErrorCode::ValidationError);
}

// ------------------------------------------------- coherence mix fuzz

namespace {

/**
 * parseMix totality: any string maps to a mix or to nullopt with a
 * non-empty error. Never throws or aborts. A returned mix is always
 * finite, non-negative, and not all-zero.
 */
void
expectMixTotal(const std::string &text)
{
    std::string error;
    std::optional<coh::SharingMix> mix;
    ASSERT_NO_THROW(mix = coh::parseMix(text, error))
        << "parseMix threw on " << text.size() << "-byte input";
    if (!mix.has_value()) {
        EXPECT_FALSE(error.empty());
        return;
    }
    double sum = 0.0;
    for (const double w : mix->weights) {
        EXPECT_TRUE(std::isfinite(w));
        EXPECT_GE(w, 0.0);
        sum += w;
    }
    EXPECT_GT(sum, 0.0);
}

} // namespace

TEST_P(FuzzSeeds, ParseMixIsTotalOnGarbageBytes)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 2417 + 5);
    for (int round = 0; round < 200; ++round) {
        std::string text(rng.below(96), '\0');
        for (auto &c : text)
            c = static_cast<char>(rng.below(256));
        expectMixTotal(text);
    }
    // Mix-shaped garbage: valid tokens in hostile arrangements.
    const char *shards[] = {"private",  "read_shared",
                            "migratory", "producer_consumer",
                            ":",         ",",
                            "0.5",       "-1",
                            "1e999",     "nan",
                            "inf",       "0x10",
                            "",          " "};
    for (int round = 0; round < 200; ++round) {
        std::string text;
        const auto parts = 1 + rng.below(12);
        for (std::uint64_t i = 0; i < parts; ++i)
            text += shards[rng.below(std::size(shards))];
        expectMixTotal(text);
    }
}

TEST_P(FuzzSeeds, MutatedValidMixesNeverCrashTheParser)
{
    const std::string full =
        "private:0.4,read_shared:0.3,migratory:0.2,"
        "producer_consumer:0.1";
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 6701 + 9);
    for (int round = 0; round < 200; ++round) {
        std::string text = full;
        const auto flips = 1 + rng.below(6);
        for (std::uint64_t i = 0; i < flips; ++i)
            text[rng.below(text.size())] =
                static_cast<char>(rng.below(256));
        expectMixTotal(text);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Range(1, 13));
