/**
 * @file
 * Tests for the switch-merge polish pass.
 */

#include <gtest/gtest.h>

#include "core/methodology.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::core;

namespace {

DesignOutcome
run(trace::Benchmark bench, std::uint32_t ranks, bool merge)
{
    trace::NasConfig cfg;
    cfg.ranks = ranks;
    cfg.iterations = 1;
    const auto ks =
        trace::analyzeByCall(trace::generateBenchmark(bench, cfg));
    MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    mcfg.mergeSwitches = merge;
    mcfg.restarts = 8;
    return runMethodology(ks, mcfg);
}

} // namespace

TEST(MergeSwitches, ReducesSwitchCountOnAdiBenchmarks)
{
    const auto merged = run(trace::Benchmark::BT, 9, true);
    const auto plain = run(trace::Benchmark::BT, 9, false);
    EXPECT_LT(merged.design.numSwitches, plain.design.numSwitches);
    // The paper's BT-9 network sits near half the mesh's 9 switches.
    EXPECT_LE(merged.design.numSwitches, 6u);
}

TEST(MergeSwitches, PreservesConstraintsAndTheoremOne)
{
    for (const auto bench : trace::kAllBenchmarks) {
        const auto outcome =
            run(bench, trace::smallConfigRanks(bench), true);
        EXPECT_TRUE(outcome.constraintsMet)
            << trace::benchmarkName(bench);
        EXPECT_TRUE(outcome.violations.empty())
            << trace::benchmarkName(bench);
        for (SwitchId s = 0; s < outcome.design.numSwitches; ++s)
            EXPECT_LE(outcome.design.switchDegree(s), 5u);
    }
}

TEST(MergeSwitches, NeverIncreasesLinksBeyondSlack)
{
    const auto merged = run(trace::Benchmark::SP, 9, true);
    const auto plain = run(trace::Benchmark::SP, 9, false);
    // Accept criterion: at most one extra full-duplex link in total.
    EXPECT_LE(merged.design.totalLinks(), plain.design.totalLinks() + 1);
}

TEST(MergeSwitches, NoOpWhenAlreadyMinimal)
{
    // CG-8 converges to 4 switches of 2 procs; merging two of those
    // would exceed the degree budget, so the pass must leave it alone.
    const auto merged = run(trace::Benchmark::CG, 8, true);
    EXPECT_EQ(merged.design.numSwitches, 4u);
    EXPECT_TRUE(merged.constraintsMet);
}

TEST(MergeSwitches, DeterministicAcrossRuns)
{
    const auto a = run(trace::Benchmark::BT, 9, true);
    const auto b = run(trace::Benchmark::BT, 9, true);
    EXPECT_EQ(a.design.numSwitches, b.design.numSwitches);
    EXPECT_EQ(a.design.totalLinks(), b.design.totalLinks());
    EXPECT_EQ(a.design.procHome, b.design.procHome);
}
