/**
 * @file
 * Bounded-slack ("lax-sync") credit relaxation tests: signature
 * gating (strict signatures keep their historical bytes, so no cache
 * key or golden artifact moves), exactness on 1-cycle wires, the
 * error bound on ring/transpose traces, and the monotonicity argument
 * (relaxation only removes credit stalls, never adds them).
 */

#include <gtest/gtest.h>

#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "trace/scale_patterns.hpp"

using namespace minnoc;

namespace {

/** Credit-starved configuration: 1 VC, depth-1 buffers. */
sim::SimConfig
starved(sim::Cycle slack)
{
    sim::SimConfig cfg;
    cfg.numVcs = 1;
    cfg.vcDepth = 1;
    cfg.laxSyncSlack = slack;
    return cfg;
}

trace::Trace
patternTrace(const std::string &name, std::uint32_t ranks)
{
    return trace::traceFromCliques(
        trace::makeScalePattern(name, ranks), name, 1024, 1);
}

} // namespace

TEST(LaxSync, SignatureAppendsOnlyWhenNonzero)
{
    const sim::SimConfig strict;
    EXPECT_EQ(strict.signature().find(";lax="), std::string::npos);

    sim::SimConfig explicitZero;
    explicitZero.laxSyncSlack = 0;
    EXPECT_EQ(strict.signature(), explicitZero.signature());

    sim::SimConfig lax;
    lax.laxSyncSlack = 5;
    const auto sig = lax.signature();
    EXPECT_NE(sig.find(";lax=5"), std::string::npos);
    // Strict prefix unchanged: only the suffix is appended.
    EXPECT_EQ(sig.substr(0, strict.signature().size()),
              strict.signature());
}

TEST(LaxSync, StrictModeIsUnchangedByTheFeature)
{
    // slack 0 must take the exact historical code path: identical
    // results to a config that never heard of lax-sync.
    const auto tr = patternTrace("transpose", 16);
    const auto mesh = topo::buildMesh(16);

    const auto a =
        sim::runTrace(tr, *mesh.topo, *mesh.routing, starved(0));
    sim::SimConfig untouched;
    untouched.numVcs = 1;
    untouched.vcDepth = 1;
    const auto b =
        sim::runTrace(tr, *mesh.topo, *mesh.routing, untouched);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.avgPacketLatency, b.avgPacketLatency);
    EXPECT_EQ(a.linkFlits, b.linkFlits);
}

TEST(LaxSync, ExactOnSingleCycleWires)
{
    // On a mesh every wire is 1 cycle: a credit generated at T is
    // consumable at T+1 in strict mode already, so any slack must be
    // a provable no-op, not merely a small error.
    for (const std::string pattern : {"ring", "transpose"}) {
        const auto tr = patternTrace(pattern, 16);
        const auto mesh = topo::buildMesh(16);
        const auto strict =
            sim::runTrace(tr, *mesh.topo, *mesh.routing, starved(0));
        for (const sim::Cycle slack : {1u, 4u, 32u}) {
            const auto lax = sim::runTrace(tr, *mesh.topo,
                                           *mesh.routing,
                                           starved(slack));
            EXPECT_EQ(strict.execTime, lax.execTime) << pattern;
            EXPECT_EQ(strict.avgPacketLatency, lax.avgPacketLatency)
                << pattern;
            EXPECT_EQ(strict.linkFlits, lax.linkFlits) << pattern;
        }
    }
}

TEST(LaxSync, ErrorBoundedOnRingAndTransposeTraces)
{
    // Mean packet latency may only deviate from strict by at most the
    // slack window on these traces (on 1-cycle meshes the deviation
    // is exactly zero, which trivially satisfies the bound — the
    // assertion still guards against any regression that would make
    // relaxation leak into flit timing).
    for (const std::string pattern : {"ring", "transpose"}) {
        const auto tr = patternTrace(pattern, 16);
        const auto mesh = topo::buildMesh(16);
        const auto strict =
            sim::runTrace(tr, *mesh.topo, *mesh.routing, starved(0));
        for (const sim::Cycle slack : {1u, 2u, 8u}) {
            const auto lax = sim::runTrace(tr, *mesh.topo,
                                           *mesh.routing,
                                           starved(slack));
            const double err =
                lax.avgPacketLatency > strict.avgPacketLatency
                    ? lax.avgPacketLatency - strict.avgPacketLatency
                    : strict.avgPacketLatency - lax.avgPacketLatency;
            EXPECT_LE(err, static_cast<double>(slack))
                << pattern << " slack=" << slack;
        }
    }
}

TEST(LaxSync, RelaxationNeverSlowsTheReplayDown)
{
    // On multi-cycle wires (torus wrap links) relaxation removes
    // credit stalls; execution time must be monotonically <= strict,
    // with every packet still delivered and flit routes untouched.
    for (const std::string pattern : {"ring", "transpose"}) {
        const auto tr = patternTrace(pattern, 16);
        const auto torus = topo::buildTorus(16);
        const auto strict =
            sim::runTrace(tr, *torus.topo, *torus.routing, starved(0));
        for (const sim::Cycle slack : {1u, 8u}) {
            const auto lax = sim::runTrace(tr, *torus.topo,
                                           *torus.routing,
                                           starved(slack));
            EXPECT_LE(lax.execTime, strict.execTime) << pattern;
            EXPECT_EQ(lax.packetsDelivered, strict.packetsDelivered)
                << pattern;
            // Routing untouched: same flits over the same links.
            EXPECT_EQ(lax.linkFlits, strict.linkFlits) << pattern;
        }
    }
}

TEST(LaxSync, DeterministicForFixedSlack)
{
    const auto tr = patternTrace("ring", 16);
    const auto torus = topo::buildTorus(16);
    const auto a =
        sim::runTrace(tr, *torus.topo, *torus.routing, starved(8));
    const auto b =
        sim::runTrace(tr, *torus.topo, *torus.routing, starved(8));
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.avgPacketLatency, b.avgPacketLatency);
    EXPECT_EQ(a.linkFlits, b.linkFlits);
}
