/**
 * @file
 * Node-axis scale tests: the hierarchical pre-partitioner (determinism,
 * leaf sizing, agreement with the flat path under Theorem 1), the
 * closed-form scale patterns, the cached CommBitset popcount, the
 * incremental Theorem-1 verifier, and byte-identity of a 256-rank
 * design across thread counts and reruns.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/design_io.hpp"
#include "core/hier_partitioner.hpp"
#include "core/methodology.hpp"
#include "core/verify.hpp"
#include "trace/analyzer.hpp"
#include "trace/scale_patterns.hpp"

using namespace minnoc::core;
namespace trace = minnoc::trace;

namespace {

std::string
serialized(const FinalizedDesign &d)
{
    std::ostringstream os;
    saveDesign(d, os);
    return os.str();
}

} // namespace

TEST(CommBitsetCount, MaintainedByInsertAndErase)
{
    CommBitset s(200);
    EXPECT_EQ(s.size(), 0u);
    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(s.insert(3));
    EXPECT_TRUE(s.insert(130));
    EXPECT_FALSE(s.insert(3)); // duplicate: count must not drift
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.erase(3));
    EXPECT_FALSE(s.erase(3)); // double erase: count must not drift
    EXPECT_EQ(s.size(), 1u);
    EXPECT_FALSE(s.empty());
    s.resize(64);
    EXPECT_EQ(s.size(), 0u);
}

TEST(CommBitsetCount, EqualityIsWordExact)
{
    CommBitset a(100);
    CommBitset b(100);
    a.insert(7);
    a.insert(70);
    a.erase(70);
    b.insert(7);
    // Different insert/erase histories, same words: equal.
    EXPECT_TRUE(a == b);
    b.insert(8);
    EXPECT_FALSE(a == b);
    // Same bits at a different width: not equal (fixed-width contract).
    CommBitset c(101);
    c.insert(7);
    EXPECT_FALSE(a == c);
}

TEST(ScalePatterns, RingTwoDirectionalCliques)
{
    const auto ks = trace::ringPattern(8);
    EXPECT_EQ(ks.numProcs(), 8u);
    EXPECT_EQ(ks.numCliques(), 2u);
    EXPECT_EQ(ks.numComms(), 16u); // 8 forward + 8 backward
}

TEST(ScalePatterns, TransposeDropsFixedPoints)
{
    const auto ks = trace::transposePattern(16); // 4 x 4 grid
    EXPECT_EQ(ks.numCliques(), 1u);
    EXPECT_EQ(ks.numComms(), 12u); // 16 minus the 4-element diagonal
}

TEST(ScalePatterns, NearestNeighborFourShifts)
{
    const auto ks = trace::nearestNeighborPattern(16);
    EXPECT_EQ(ks.numCliques(), 4u);
}

TEST(ScalePatterns, RailOneCliquePerDestinationGroup)
{
    const auto ks = trace::railPattern(32, 8, 2); // 4 groups
    EXPECT_EQ(ks.numCliques(), 4u);
    // Each destination group receives from 3 others on 2 rails.
    for (const auto &k : ks.cliques())
        EXPECT_EQ(k.comms.size(), 6u);
}

TEST(ScalePatterns, DispatchMatchesDirectCalls)
{
    const auto direct = trace::ringPattern(64);
    const auto named = trace::makeScalePattern("ring", 64);
    EXPECT_EQ(direct.numComms(), named.numComms());
    EXPECT_EQ(direct.numCliques(), named.numCliques());
}

TEST(ScalePatterns, FanDirectionsGrowMonotonically)
{
    using trace::GroupDirection;
    // 4 groups of 8, subgroup 2: uni fans the root subgroup out to
    // the 3 other groups (2 x 8 comms each), bi adds the gather into
    // group 0, omni makes every group the root.
    const auto uni = trace::fanPattern(32, 8, 2, GroupDirection::Uni);
    EXPECT_EQ(uni.numCliques(), 3u);
    EXPECT_EQ(uni.numComms(), 48u);

    const auto bi = trace::fanPattern(32, 8, 2, GroupDirection::Bi);
    EXPECT_EQ(bi.numCliques(), 4u);
    EXPECT_EQ(bi.numComms(), 96u);

    const auto omni = trace::fanPattern(32, 8, 2, GroupDirection::Omni);
    EXPECT_EQ(omni.numCliques(), 4u);
    EXPECT_EQ(omni.numComms(), 192u);
}

TEST(ScalePatterns, DenseSubgroupProducts)
{
    using trace::GroupDirection;
    // 4 groups of 4, subgroup 2: each active ordered pair contributes
    // the 2 x 2 subgroup product.
    const auto uni = trace::densePattern(16, 4, 2, GroupDirection::Uni);
    EXPECT_EQ(uni.numCliques(), 3u);
    EXPECT_EQ(uni.numComms(), 12u);

    const auto bi = trace::densePattern(16, 4, 2, GroupDirection::Bi);
    EXPECT_EQ(bi.numCliques(), 4u);
    EXPECT_EQ(bi.numComms(), 24u);

    const auto omni =
        trace::densePattern(16, 4, 2, GroupDirection::Omni);
    EXPECT_EQ(omni.numCliques(), 4u);
    EXPECT_EQ(omni.numComms(), 48u);
}

TEST(ScalePatterns, NamedFanDenseDispatch)
{
    const auto named = trace::makeScalePattern("dense_omni", 16, 4, 2);
    const auto direct = trace::densePattern(
        16, 4, 2, trace::GroupDirection::Omni);
    EXPECT_EQ(named.numComms(), direct.numComms());
    EXPECT_EQ(named.numCliques(), direct.numCliques());
    // Every advertised name dispatches (fatal() would abort).
    for (const auto &name : trace::scalePatternNames())
        EXPECT_GT(trace::makeScalePattern(name, 64).numComms(), 0u);
}

TEST(ScalePatterns, TraceFromCliquesRoundTripsThroughAnalyzer)
{
    const auto ks =
        trace::fanPattern(16, 4, 2, trace::GroupDirection::Omni);
    const auto tr = trace::traceFromCliques(ks, "fan", 256, 2);
    EXPECT_EQ(tr.numRanks(), ks.numProcs());
    // callId = clique index, so by-call analysis recovers exactly the
    // generating contention periods (iterations dedupe away).
    const auto recovered = trace::analyzeByCall(tr);
    EXPECT_EQ(recovered.numCliques(), ks.numCliques());
    EXPECT_EQ(recovered.numComms(), ks.numComms());
}

TEST(HierPartitioner, LeafSizesAndInvariants)
{
    const auto ks = trace::ringPattern(128);
    DesignNetwork net(ks);
    PartitionerConfig cfg;
    cfg.hierarchicalLeaf = 8;
    PartitionResult result;
    const auto stats = hierarchicalPrePartition(net, cfg, result);
    net.checkInvariants();
    EXPECT_GE(stats.leaves, 128u / 8u);
    EXPECT_EQ(stats.splits, net.numSwitches() - 1);
    EXPECT_EQ(result.numSplits, stats.splits);
    for (SwitchId s = 0; s < net.numSwitches(); ++s) {
        EXPECT_GE(net.procsOf(s).size(), 1u);
        EXPECT_LE(net.procsOf(s).size(), 8u);
    }
}

TEST(HierPartitioner, DeterministicAcrossRuns)
{
    const auto ks = trace::nearestNeighborPattern(128);
    PartitionerConfig cfg;
    auto run = [&] {
        DesignNetwork net(ks);
        PartitionResult result;
        hierarchicalPrePartition(net, cfg, result);
        std::vector<SwitchId> homes;
        for (ProcId p = 0; p < net.numProcs(); ++p)
            homes.push_back(net.homeOf(p));
        return homes;
    };
    EXPECT_EQ(run(), run());
}

TEST(HierPartitioner, HierAndFlatBothVerifyOnSameCliques)
{
    // Force the hierarchical path at a size the flat path also handles,
    // and require Theorem-1-clean, constraint-satisfying designs from
    // both on the SAME clique set.
    const auto ks = trace::ringPattern(32);
    MethodologyConfig flat;
    flat.partitioner.constraints.maxDegree = 6;
    flat.restarts = 2;
    flat.partitioner.hierarchicalThreshold = 0; // flat paper path
    const auto flatOut = runMethodology(ks, flat);
    EXPECT_TRUE(flatOut.constraintsMet);
    EXPECT_TRUE(flatOut.violations.empty());

    MethodologyConfig hier = flat;
    hier.partitioner.hierarchicalThreshold = 16; // 32 > 16: engages
    const auto hierOut = runMethodology(ks, hier);
    EXPECT_TRUE(hierOut.constraintsMet);
    EXPECT_TRUE(hierOut.violations.empty());
    EXPECT_TRUE(checkContentionFree(hierOut.design, ks).empty());
}

TEST(HierPartitioner, DesignsByteIdenticalAt256Ranks)
{
    const auto ks = trace::ringPattern(256);
    MethodologyConfig cfg;
    cfg.partitioner.constraints.maxDegree = 6;
    cfg.restarts = 2;

    cfg.threads = 1;
    const auto first = runMethodology(ks, cfg);
    EXPECT_TRUE(first.violations.empty());
    const auto firstBytes = serialized(first.design);

    // Rerun at the same thread count: identical bytes.
    const auto rerun = runMethodology(ks, cfg);
    EXPECT_EQ(firstBytes, serialized(rerun.design));

    // Different thread count: the wave selection must keep the winner
    // identical.
    cfg.threads = 4;
    const auto threaded = runMethodology(ks, cfg);
    EXPECT_EQ(firstBytes, serialized(threaded.design));
}

TEST(IncrementalVerifier, MatchesBatchAndReusesUnchangedPipes)
{
    CliqueSet ks(6);
    const CommId a = ks.internComm(Comm(0, 1));
    const CommId b = ks.internComm(Comm(2, 3));
    const CommId c = ks.internComm(Comm(4, 5));
    ks.addCliqueByIds({a, b});
    ks.addCliqueByIds({c});

    FinalizedDesign d;
    d.numProcs = 6;
    d.numSwitches = 3;
    FinalizedPipe p01;
    p01.key = PipeKey(0, 1);
    p01.links = p01.linksFwd = 1;
    p01.fwdLink = {{a, 0}, {b, 0}}; // contending pair shares link 0
    FinalizedPipe p12;
    p12.key = PipeKey(1, 2);
    p12.links = p12.linksFwd = 1;
    p12.fwdLink = {{c, 0}};
    d.pipes = {p01, p12};

    IncrementalVerifier v(ks);
    const auto batch = checkContentionFree(d, ks);
    const auto inc = v.check(d);
    ASSERT_EQ(batch.size(), 1u);
    ASSERT_EQ(inc.size(), 1u);
    EXPECT_EQ(inc[0].a, batch[0].a);
    EXPECT_EQ(inc[0].b, batch[0].b);
    EXPECT_EQ(inc[0].pipe, batch[0].pipe);
    EXPECT_EQ(inc[0].forward, batch[0].forward);
    EXPECT_EQ(inc[0].link, batch[0].link);
    EXPECT_EQ(v.pipesChecked(), 2u);
    EXPECT_EQ(v.pipesReused(), 0u);

    // Unchanged design: every pipe served from cache, same result.
    const auto again = v.check(d);
    EXPECT_EQ(again.size(), 1u);
    EXPECT_EQ(v.pipesChecked(), 2u);
    EXPECT_EQ(v.pipesReused(), 2u);

    // Fix the violation on one pipe: only that pipe is re-checked.
    d.pipes[0].links = d.pipes[0].linksFwd = 2;
    d.pipes[0].fwdLink = {{a, 0}, {b, 1}};
    const auto fixed = v.check(d);
    EXPECT_TRUE(fixed.empty());
    EXPECT_TRUE(checkContentionFree(d, ks).empty());
    EXPECT_EQ(v.pipesChecked(), 3u);
    EXPECT_EQ(v.pipesReused(), 3u);

    // A pipe that disappears just drops out of the cache.
    d.pipes.pop_back();
    EXPECT_TRUE(v.check(d).empty());
    EXPECT_EQ(v.pipesChecked(), 3u);
    EXPECT_EQ(v.pipesReused(), 4u);
}
