/**
 * @file
 * Unit tests for design serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/design_io.hpp"
#include "core/methodology.hpp"
#include "core/verify.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::core;

namespace {

DesignOutcome
cgOutcome(std::uint32_t ranks)
{
    trace::NasConfig cfg;
    cfg.ranks = ranks;
    cfg.iterations = 1;
    const auto ks = trace::analyzeByCall(trace::generateCG(cfg));
    MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    return runMethodology(ks, mcfg);
}

bool
sameDesign(const FinalizedDesign &a, const FinalizedDesign &b)
{
    if (a.numProcs != b.numProcs || a.numSwitches != b.numSwitches ||
        a.procHome != b.procHome || a.routes != b.routes)
        return false;
    if (a.comms.size() != b.comms.size() ||
        a.pipes.size() != b.pipes.size())
        return false;
    for (std::size_t i = 0; i < a.comms.size(); ++i) {
        if (!(a.comms[i] == b.comms[i]))
            return false;
    }
    for (std::size_t i = 0; i < a.pipes.size(); ++i) {
        const auto &x = a.pipes[i];
        const auto &y = b.pipes[i];
        if (!(x.key == y.key) || x.links != y.links ||
            x.connectivityOnly != y.connectivityOnly ||
            x.fwdLink != y.fwdLink || x.bwdLink != y.bwdLink)
            return false;
    }
    return true;
}

} // namespace

TEST(DesignIo, RoundTripPreservesEverything)
{
    const auto outcome = cgOutcome(16);
    std::stringstream ss;
    saveDesign(outcome.design, ss);
    const auto loaded = loadDesign(ss);
    EXPECT_TRUE(sameDesign(outcome.design, loaded));
    // Switch membership lists are rebuilt from homes; degrees agree.
    for (SwitchId s = 0; s < loaded.numSwitches; ++s) {
        EXPECT_EQ(loaded.switchDegree(s),
                  outcome.design.switchDegree(s));
    }
}

TEST(DesignIo, LoadedDesignBuildsAndSimulates)
{
    const auto outcome = cgOutcome(8);
    std::stringstream ss;
    saveDesign(outcome.design, ss);
    const auto loaded = loadDesign(ss);

    const auto plan = topo::planFloor(loaded);
    const auto net = topo::buildFromDesign(loaded, plan);
    EXPECT_EQ(net.topo->numProcs(), 8u);
    EXPECT_NO_FATAL_FAILURE(
        topo::validateRouting(*net.topo, *net.routing));
}

TEST(DesignIo, TheoremOneSurvivesRoundTrip)
{
    trace::NasConfig cfg;
    cfg.ranks = 8;
    cfg.iterations = 1;
    auto ks = trace::analyzeByCall(trace::generateCG(cfg));
    ks.reduceToMaximum();
    MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    const auto outcome = runMethodology(ks, mcfg);

    std::stringstream ss;
    saveDesign(outcome.design, ss);
    const auto loaded = loadDesign(ss);
    EXPECT_TRUE(checkContentionFree(loaded, ks).empty());
}

TEST(DesignIo, MultiThreadedDesignsRoundTripBitIdentically)
{
    // Multi-threaded runs must serialize to the same bytes as their
    // reload: save -> load -> re-save is the identity, and the loaded
    // design still satisfies Theorem 1, for every NAS pattern.
    for (const auto bench : trace::kAllBenchmarks) {
        trace::NasConfig cfg;
        cfg.ranks = trace::smallConfigRanks(bench);
        cfg.iterations = 1;
        const auto ks = trace::analyzeByCall(
            trace::generateBenchmark(bench, cfg));
        MethodologyConfig mcfg;
        mcfg.partitioner.constraints.maxDegree = 5;
        mcfg.restarts = 8;
        mcfg.threads = 4;
        const auto outcome = runMethodology(ks, mcfg);
        SCOPED_TRACE(trace::benchmarkName(bench));
        ASSERT_TRUE(outcome.constraintsMet);

        std::stringstream ss;
        saveDesign(outcome.design, ss);
        const auto bytes = ss.str();
        const auto loaded = loadDesign(ss);
        EXPECT_TRUE(sameDesign(outcome.design, loaded));

        std::stringstream again;
        saveDesign(loaded, again);
        EXPECT_EQ(again.str(), bytes); // bit-identical re-save
        EXPECT_TRUE(checkContentionFree(loaded, ks).empty());
    }
}

TEST(DesignIo, RejectsBadHeader)
{
    std::stringstream ss("garbage 1 2 3");
    EXPECT_EXIT(loadDesign(ss), ::testing::ExitedWithCode(1),
                "bad header");
}

TEST(DesignIo, RejectsWrongVersion)
{
    std::stringstream ss("minnoc-design 99 4 1\nend\n");
    EXPECT_EXIT(loadDesign(ss), ::testing::ExitedWithCode(1),
                "unsupported version");
}

TEST(DesignIo, RejectsTruncatedFile)
{
    const auto outcome = cgOutcome(8);
    std::stringstream ss;
    saveDesign(outcome.design, ss);
    std::string text = ss.str();
    text.resize(text.size() / 2); // chop mid-file, drops "end"
    std::stringstream half(text);
    EXPECT_EXIT(loadDesign(half), ::testing::ExitedWithCode(1), "");
}

TEST(DesignIo, RejectsUnhomedProcessor)
{
    std::stringstream ss("minnoc-design 1 2 1\nhome 0 0\nend\n");
    EXPECT_EXIT(loadDesign(ss), ::testing::ExitedWithCode(1),
                "no home");
}
