/**
 * @file
 * Unit tests for the flit-level network model: latency arithmetic,
 * wormhole serialization, virtual channels, credit backpressure, FIFO
 * delivery, and regressive deadlock recovery.
 */

#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "topo/builders.hpp"

using namespace minnoc;
using namespace minnoc::sim;

namespace {

/** Step the network until idle or the cycle budget runs out. */
Cycle
runUntilIdle(Network &net, Cycle start = 0, Cycle budget = 100000)
{
    Cycle now = start;
    while (!net.idle() && now < start + budget)
        net.step(++now);
    EXPECT_TRUE(net.idle()) << "network failed to drain";
    return now;
}

} // namespace

TEST(NetworkSim, SinglePacketLatencyOnCrossbar)
{
    const auto built = topo::buildCrossbar(4);
    SimConfig cfg;
    Network net(*built.topo, *built.routing, cfg);

    // 60 bytes = 15 payload flits + head = 16 flits; path: proc ->
    // switch (delay 1) -> proc (delay 1).
    const auto id = net.enqueue(0, 1, 60, 0, 0);
    runUntilIdle(net);
    const auto &pkt = net.packet(id);
    EXPECT_TRUE(pkt.delivered());
    EXPECT_EQ(pkt.numFlits, 16u);
    // Serialization: head needs ~2 wire hops + route/SA stages; tail
    // follows 15 cycles behind. Latency must be close to flits + 2*wire
    // and strictly more than the pure serialization time.
    EXPECT_GE(pkt.deliveredAt - pkt.enqueuedAt, 16 + 2);
    EXPECT_LE(pkt.deliveredAt - pkt.enqueuedAt, 16 + 12);
    EXPECT_TRUE(net.hasDelivered(1, 0));
    EXPECT_EQ(net.consumeDelivered(1, 0), id);
    EXPECT_FALSE(net.hasDelivered(1, 0));
}

TEST(NetworkSim, ZeroByteMessageIsOneFlit)
{
    const auto built = topo::buildCrossbar(2);
    Network net(*built.topo, *built.routing, SimConfig{});
    const auto id = net.enqueue(0, 1, 0, 0, 0);
    runUntilIdle(net);
    EXPECT_EQ(net.packet(id).numFlits, 1u);
    EXPECT_TRUE(net.packet(id).delivered());
}

TEST(NetworkSim, EnqueueValidation)
{
    const auto built = topo::buildCrossbar(2);
    Network net(*built.topo, *built.routing, SimConfig{});
    EXPECT_DEATH(net.enqueue(0, 0, 4, 0, 0), "src == dst");
    EXPECT_DEATH(net.enqueue(0, 9, 4, 0, 0), "out of range");
}

TEST(NetworkSim, CrossbarIsNonBlockingForDisjointPairs)
{
    const auto built = topo::buildCrossbar(4);
    Network net(*built.topo, *built.routing, SimConfig{});
    // Two packets to different destinations: both should complete in
    // essentially single-packet time.
    const auto a = net.enqueue(0, 1, 400, 0, 0);
    const auto b = net.enqueue(2, 3, 400, 0, 0);
    runUntilIdle(net);
    const auto la = net.packet(a).deliveredAt;
    const auto lb = net.packet(b).deliveredAt;
    EXPECT_LE(std::max(la, lb) - std::min(la, lb), 2);
}

TEST(NetworkSim, SharedDestinationSerializes)
{
    const auto built = topo::buildCrossbar(4);
    Network net(*built.topo, *built.routing, SimConfig{});
    // Both to proc 3: the ejection link is the bottleneck. Round-robin
    // switch allocation interleaves the two wormholes on separate VCs,
    // so both complete at roughly double the single-packet latency —
    // the link still moves only one flit per cycle in total.
    const auto a = net.enqueue(0, 3, 400, 0, 0); // 101 flits each
    const auto b = net.enqueue(1, 3, 400, 0, 0);
    runUntilIdle(net);
    const auto last =
        std::max(net.packet(a).deliveredAt, net.packet(b).deliveredAt);
    // 202 flits through one link: at least 202 cycles end to end.
    EXPECT_GE(last, 202);
    // And well under twice that (no lost bandwidth).
    EXPECT_LE(last, 240);

    // Contrast: disjoint destinations complete in single-packet time.
    Network net2(*built.topo, *built.routing, SimConfig{});
    const auto c = net2.enqueue(0, 3, 400, 0, 0);
    runUntilIdle(net2);
    EXPECT_LE(net2.packet(c).deliveredAt, 130);
}

TEST(NetworkSim, SourceInjectionSerializes)
{
    const auto built = topo::buildCrossbar(4);
    Network net(*built.topo, *built.routing, SimConfig{});
    // Same source, different destinations: injection link serializes.
    const auto a = net.enqueue(0, 1, 400, 0, 0);
    const auto b = net.enqueue(0, 2, 400, 0, 0);
    runUntilIdle(net);
    EXPECT_GE(net.packet(b).deliveredAt - net.packet(a).deliveredAt, 90);
    EXPECT_TRUE(net.injected(a));
    EXPECT_TRUE(net.injected(b));
}

TEST(NetworkSim, FifoDeliveryPerChannel)
{
    const auto built = topo::buildCrossbar(2);
    Network net(*built.topo, *built.routing, SimConfig{});
    const auto a = net.enqueue(0, 1, 40, 0, 0);
    const auto b = net.enqueue(0, 1, 40, 1, 0);
    runUntilIdle(net);
    EXPECT_EQ(net.consumeDelivered(1, 0), a);
    EXPECT_EQ(net.consumeDelivered(1, 0), b);
}

TEST(NetworkSim, MeshMultiHopDelivers)
{
    const auto built = topo::buildMesh(16);
    Network net(*built.topo, *built.routing, SimConfig{});
    // Corner to corner: 6 mesh hops.
    const auto id = net.enqueue(0, 15, 256, 0, 0);
    runUntilIdle(net);
    EXPECT_TRUE(net.packet(id).delivered());
    EXPECT_EQ(net.stats().packetsDelivered, 1u);
}

TEST(NetworkSim, TorusAdaptiveDelivers)
{
    const auto built = topo::buildTorus(16);
    Network net(*built.topo, *built.routing, SimConfig{});
    for (core::ProcId p = 0; p < 16; ++p)
        net.enqueue(p, static_cast<core::ProcId>((p + 5) % 16), 128, 0, 0);
    runUntilIdle(net);
    EXPECT_EQ(net.stats().packetsDelivered, 16u);
    EXPECT_EQ(net.stats().deadlockRecoveries, 0u);
}

TEST(NetworkSim, HeavyLoadDrainsWithoutDeadlock)
{
    const auto built = topo::buildMesh(16);
    SimConfig cfg;
    Network net(*built.topo, *built.routing, cfg);
    // All-to-all burst: 240 packets through a 4x4 mesh with DOR (which
    // is deadlock-free); everything must drain with no recoveries.
    for (core::ProcId s = 0; s < 16; ++s) {
        for (core::ProcId d = 0; d < 16; ++d) {
            if (s != d)
                net.enqueue(s, d, 512, 0, 0);
        }
    }
    runUntilIdle(net, 0, 2'000'000);
    EXPECT_EQ(net.stats().packetsDelivered, 240u);
    EXPECT_EQ(net.stats().deadlockRecoveries, 0u);
    EXPECT_GT(net.stats().packetLatency.mean(), 0.0);
}

TEST(NetworkSim, DeadlockRecoveryKillsAndRedelivers)
{
    // Force a circular wait on a 2-switch topology with custom routing:
    // (0 -> 1) routes via S0 then S1; (1 -> 0) via S1 then S0 — on a
    // single-VC, tiny-buffer configuration with a long packet, the two
    // wormholes can block on each other's credits only transiently, so
    // instead build a true cycle: route (0->1) via S0,S1 and (2->3)
    // via S1,S0 where the destinations' ejection is never an issue but
    // an artificial 3-switch ring with unidirectional routing creates
    // the classic cyclic dependency.
    topo::Topology ring(3, 3, "ring3");
    for (core::ProcId p = 0; p < 3; ++p)
        ring.addDuplex(ring.procNode(p), ring.switchNode(p), 1);
    // Unidirectional ring links S0->S1->S2->S0.
    const auto l01 = ring.addLink(ring.switchNode(0), ring.switchNode(1), 1);
    const auto l12 = ring.addLink(ring.switchNode(1), ring.switchNode(2), 1);
    const auto l20 = ring.addLink(ring.switchNode(2), ring.switchNode(0), 1);

    topo::TableRouting routing(ring, "ring");
    // Each proc sends two hops around the ring: 0->2 uses S0,S1,S2;
    // 1->0 uses S1,S2,S0; 2->1 uses S2,S0,S1. With one VC these three
    // wormholes form a cyclic wait once their heads block.
    routing.setPath(0, 2, {ring.injectionLink(0), l01, l12,
                           ring.ejectionLink(2)});
    routing.setPath(1, 0, {ring.injectionLink(1), l12, l20,
                           ring.ejectionLink(0)});
    routing.setPath(2, 1, {ring.injectionLink(2), l20, l01,
                           ring.ejectionLink(1)});

    SimConfig cfg;
    cfg.numVcs = 1;
    cfg.vcDepth = 1;
    cfg.deadlockTimeout = 200;
    cfg.deadlockScanInterval = 64;
    cfg.deadlockPenalty = 50;
    Network net(ring, routing, cfg);
    net.enqueue(0, 2, 4000, 0, 0); // 1001 flits each: long wormholes
    net.enqueue(1, 0, 4000, 0, 0);
    net.enqueue(2, 1, 4000, 0, 0);

    Cycle now = 0;
    while (!net.idle() && now < 500000)
        net.step(++now);
    EXPECT_TRUE(net.idle());
    // All three eventually delivered, with at least one recovery.
    EXPECT_EQ(net.stats().packetsDelivered, 3u);
    EXPECT_GE(net.stats().deadlockRecoveries, 1u);
}

namespace {

/** The 3-switch unidirectional ring whose three 2-hop routes form the
 *  classic cyclic wait under a single VC. Returns the topology; the
 *  caller installs the ring routing via makeRingRouting. */
topo::Topology
makeDeadlockRing()
{
    topo::Topology ring(3, 3, "ring3");
    for (core::ProcId p = 0; p < 3; ++p)
        ring.addDuplex(ring.procNode(p), ring.switchNode(p), 1);
    ring.addLink(ring.switchNode(0), ring.switchNode(1), 1);
    ring.addLink(ring.switchNode(1), ring.switchNode(2), 1);
    ring.addLink(ring.switchNode(2), ring.switchNode(0), 1);
    return ring;
}

topo::TableRouting
makeRingRouting(const topo::Topology &ring)
{
    const auto l01 = static_cast<topo::LinkId>(6);
    const auto l12 = static_cast<topo::LinkId>(7);
    const auto l20 = static_cast<topo::LinkId>(8);
    topo::TableRouting routing(ring, "ring");
    routing.setPath(0, 2, {ring.injectionLink(0), l01, l12,
                           ring.ejectionLink(2)});
    routing.setPath(1, 0, {ring.injectionLink(1), l12, l20,
                           ring.ejectionLink(0)});
    routing.setPath(2, 1, {ring.injectionLink(2), l20, l01,
                           ring.ejectionLink(1)});
    return routing;
}

} // namespace

TEST(NetworkSim, TinyTimeoutRecoveryRestoresCreditsAndDelivers)
{
    // An aggressive timeout fires recovery on packets that are merely
    // slow, not just truly deadlocked: the kill-and-retransmit path must
    // still converge, and the purge must restore every credit so the
    // network keeps working afterwards.
    const auto ring = makeDeadlockRing();
    const auto routing = makeRingRouting(ring);
    SimConfig cfg;
    cfg.numVcs = 1;
    cfg.vcDepth = 1;
    cfg.deadlockTimeout = 40; // far below a 1001-flit serialization
    cfg.deadlockScanInterval = 16;
    cfg.deadlockPenalty = 50;
    Network net(ring, routing, cfg);
    net.enqueue(0, 2, 4000, 0, 0);
    net.enqueue(1, 0, 4000, 0, 0);
    net.enqueue(2, 1, 4000, 0, 0);

    Cycle now = 0;
    while (!net.idle() && now < 500000)
        net.step(++now);
    ASSERT_TRUE(net.idle());
    EXPECT_EQ(net.stats().packetsDelivered, 3u);
    EXPECT_GT(net.stats().deadlockRecoveries, 0u);
    EXPECT_EQ(net.stats().recoveryExhaustions, 0u);

    // Credits restored: a second wave over the same links also drains.
    net.enqueue(0, 2, 4000, 0, now);
    net.enqueue(1, 0, 4000, 0, now);
    net.enqueue(2, 1, 4000, 0, now);
    const auto resume = now;
    while (!net.idle() && now < resume + 500000)
        net.step(++now);
    ASSERT_TRUE(net.idle());
    EXPECT_EQ(net.stats().packetsDelivered, 6u);
}

TEST(NetworkSim, RecoveryBudgetExhaustionDropsInsteadOfLivelock)
{
    const auto ring = makeDeadlockRing();
    const auto routing = makeRingRouting(ring);
    SimConfig cfg;
    cfg.numVcs = 1;
    cfg.vcDepth = 1;
    cfg.deadlockTimeout = 200;
    cfg.deadlockScanInterval = 64;
    cfg.deadlockPenalty = 50;
    cfg.maxRecoveries = 0; // first recovery immediately exhausts
    Network net(ring, routing, cfg);
    net.enqueue(0, 2, 4000, 0, 0);
    net.enqueue(1, 0, 4000, 0, 0);
    net.enqueue(2, 1, 4000, 0, 0);

    Cycle now = 0;
    while (!net.idle() && now < 500000)
        net.step(++now);
    ASSERT_TRUE(net.idle()) << "drops must break the cycle, not hang";
    EXPECT_GE(net.stats().recoveryExhaustions, 1u);
    EXPECT_EQ(net.stats().packetsDropped,
              static_cast<std::uint64_t>(net.stats().recoveryExhaustions));
    // Killing one victim unblocks the other two (or they drop too);
    // either way every packet is accounted for.
    EXPECT_EQ(net.stats().packetsDelivered + net.stats().packetsDropped,
              3u);
}

TEST(NetworkSim, MonotoneClockEnforced)
{
    const auto built = topo::buildCrossbar(2);
    Network net(*built.topo, *built.routing, SimConfig{});
    net.step(1);
    EXPECT_DEATH(net.step(1), "non-monotone");
}

TEST(NetworkSim, IdleReflectsState)
{
    const auto built = topo::buildCrossbar(2);
    Network net(*built.topo, *built.routing, SimConfig{});
    EXPECT_TRUE(net.idle());
    net.enqueue(0, 1, 4, 0, 0);
    EXPECT_FALSE(net.idle());
    runUntilIdle(net);
    EXPECT_TRUE(net.idle());
}
