/**
 * @file
 * End-to-end tests for the `minnoc serve` daemon: the robustness
 * properties the server header promises, each exercised over a real
 * socket against a live in-process Server.
 *
 *  - Responses are byte-identical to the CLI pipeline's output for the
 *    same trace and parameters, whether served cold, warm via the
 *    in-memory LRU, or warm via the on-disk DSE cache (a second server
 *    instance sharing the cache directory).
 *  - A request whose deadline has expired is cancelled and answered
 *    with a structured `timeout` error, never computed to completion.
 *  - N concurrent identical submissions trigger exactly one
 *    computation and all receive byte-identical responses.
 *  - Admission control rejects work past the queue high-water mark
 *    with `queue_full` while the daemon keeps answering `ping`.
 *  - stop() drains in-flight work: a response already being computed
 *    is delivered before the listener goes away.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "core/design_io.hpp"
#include "core/methodology.hpp"
#include "dse/explorer.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::serve;

namespace {

std::string
traceText(trace::Benchmark bench, std::uint32_t ranks)
{
    trace::NasConfig cfg;
    cfg.ranks = ranks;
    cfg.iterations = 1;
    cfg.seed = 1;
    const auto tr = trace::generateBenchmark(bench, cfg);
    std::ostringstream os;
    tr.save(os);
    return os.str();
}

trace::Trace
loadTrace(const std::string &text)
{
    std::istringstream in(text);
    return trace::Trace::load(in);
}

std::string
tempPath(const char *leaf)
{
    const auto p = std::filesystem::path(::testing::TempDir()) / leaf;
    std::filesystem::remove_all(p);
    return p.string();
}

/** `design` request mirroring the CLI defaults except restarts. */
std::string
designRequest(const std::string &id, const std::string &trace,
              std::uint32_t restarts, std::int64_t deadlineMs = 0)
{
    std::ostringstream os;
    os << "{\"id\": \"" << id << "\", \"cmd\": \"design\", \"trace\": \""
       << jsonEscape(trace) << "\", \"restarts\": " << restarts;
    if (deadlineMs > 0)
        os << ", \"deadline_ms\": " << deadlineMs;
    os << "}";
    return os.str();
}

/** Small 2-job `explore` request (degrees {4,5}, restarts 2). */
std::string
exploreRequest(const std::string &id, const std::string &trace,
               std::int64_t deadlineMs = 0)
{
    std::ostringstream os;
    os << "{\"id\": \"" << id
       << "\", \"cmd\": \"explore\", \"trace\": \"" << jsonEscape(trace)
       << "\", \"degrees\": [4, 5], \"restarts\": [2], \"vcs\": [2]"
       << ", \"unidirectional\": [0]";
    if (deadlineMs > 0)
        os << ", \"deadline_ms\": " << deadlineMs;
    os << "}";
    return os.str();
}

/** What the CLI (and therefore the daemon) must produce for design. */
std::string
expectedDesign(const std::string &traceStr, std::uint32_t restarts)
{
    const auto tr = loadTrace(traceStr);
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    mcfg.restarts = restarts;
    mcfg.partitioner.seed = 1;
    const auto outcome =
        core::runMethodology(trace::analyzeByCall(tr), mcfg);
    std::ostringstream os;
    core::saveDesign(outcome.design, os);
    return os.str();
}

/** What the CLI must produce for the exploreRequest() grid. */
std::string
expectedExplore(const std::string &traceStr, const std::string &cacheDir)
{
    const auto tr = loadTrace(traceStr);
    dse::ExploreConfig cfg;
    cfg.grid.maxDegrees = {4, 5};
    cfg.grid.restarts = {2};
    cfg.grid.seeds = {1};
    cfg.grid.vcs = {2};
    cfg.grid.unidirectional = {0};
    cfg.threads = 1;
    cfg.cacheDir = cacheDir;
    return dse::explore(tr, cfg).toJson();
}

Reply
roundTrip(Client &client, const std::string &request)
{
    EXPECT_TRUE(client.sendLine(request));
    const auto line = client.recvLine();
    EXPECT_TRUE(line.has_value()) << "no response to: " << request;
    if (!line)
        return {};
    const auto reply = parseReply(*line);
    EXPECT_TRUE(reply.has_value()) << "unparseable reply: " << *line;
    return reply.value_or(Reply{});
}

/** A Server bound to a fresh unix socket, torn down with the test. */
struct LiveServer
{
    std::string socketPath;
    std::unique_ptr<Server> server;

    explicit LiveServer(const char *leaf,
                        ServerConfig config = ServerConfig{})
    {
        socketPath = tempPath((std::string(leaf) + ".sock").c_str());
        config.socketPath = socketPath;
        if (config.cacheDir.empty())
            config.cacheDir =
                tempPath((std::string(leaf) + ".cache").c_str());
        server = std::make_unique<Server>(std::move(config));
        std::string error;
        if (!server->start(error))
            ADD_FAILURE() << "server failed to start: " << error;
    }

    ~LiveServer()
    {
        if (server)
            server->stop();
    }

    Client
    client() const
    {
        Client c;
        EXPECT_TRUE(c.connectUnix(socketPath));
        return c;
    }

    double
    counter(const std::string &name) const
    {
        return server->metrics().counter(name).value();
    }
};

} // namespace

TEST(Serve, TcpListenerAnswersPingAndStatus)
{
    ServerConfig cfg;
    cfg.port = 0; // ephemeral
    Server server(cfg);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    ASSERT_GT(server.boundPort(), 0);

    Client client;
    ASSERT_TRUE(client.connectTcp(server.boundPort()));
    const auto pong =
        roundTrip(client, "{\"id\": \"p1\", \"cmd\": \"ping\"}");
    EXPECT_TRUE(pong.ok);
    EXPECT_EQ(pong.id, "p1");
    EXPECT_EQ(pong.result, "pong");

    const auto status =
        roundTrip(client, "{\"id\": \"s1\", \"cmd\": \"status\"}");
    EXPECT_TRUE(status.ok);
    EXPECT_NE(status.result.find("\"queue_depth\""), std::string::npos);
    EXPECT_NE(status.result.find("\"in_flight\""), std::string::npos);
    EXPECT_NE(status.result.find("\"cache_hit_ratio\""),
              std::string::npos);

    server.stop();
}

TEST(Serve, MalformedInputGetsStructuredErrorsAndDaemonSurvives)
{
    LiveServer live("serve-errors");
    auto client = live.client();

    // Not JSON at all.
    auto r = roundTrip(client, "{nonsense");
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.code, "parse_error");

    // Well-formed JSON, unknown knob: fail fast, not silently ignore.
    r = roundTrip(client,
                  "{\"id\": \"u1\", \"cmd\": \"design\", "
                  "\"trace\": \"x\", \"bogus_knob\": 1}");
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.code, "validation_error");
    EXPECT_EQ(r.id, "u1");

    // Valid request whose trace bytes are garbage: the pipeline's
    // fatal() is converted to a structured error, not a dead daemon.
    r = roundTrip(client,
                  "{\"id\": \"t1\", \"cmd\": \"design\", "
                  "\"trace\": \"not a trace\"}");
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.code, "validation_error");
    EXPECT_EQ(r.id, "t1");

    // The daemon is still healthy.
    const auto pong =
        roundTrip(client, "{\"id\": \"p\", \"cmd\": \"ping\"}");
    EXPECT_TRUE(pong.ok);
    EXPECT_EQ(live.counter("serve/errors_parse_error"), 1.0);
    EXPECT_EQ(live.counter("serve/errors_validation_error"), 2.0);
}

TEST(Serve, DesignByteIdenticalToCliColdAndWarm)
{
    const auto trace = traceText(trace::Benchmark::CG, 8);
    const auto expected = expectedDesign(trace, 2);

    LiveServer live("serve-design");
    auto client = live.client();

    const auto cold = roundTrip(client, designRequest("c", trace, 2));
    ASSERT_TRUE(cold.ok) << cold.code << ": " << cold.message;
    EXPECT_EQ(cold.result, expected);
    EXPECT_EQ(live.counter("serve/computations"), 1.0);

    // Second identical request is served from the response LRU —
    // exact same bytes, no second computation.
    const auto warm = roundTrip(client, designRequest("w", trace, 2));
    ASSERT_TRUE(warm.ok);
    EXPECT_EQ(warm.result, expected);
    EXPECT_EQ(live.counter("serve/computations"), 1.0);
}

TEST(Serve, ExploreByteIdenticalAcrossAllThreeTiers)
{
    const auto trace = traceText(trace::Benchmark::CG, 8);
    const auto expected =
        expectedExplore(trace, tempPath("serve-explore-ref.cache"));

    const auto sharedCache = tempPath("serve-explore.cache");
    ServerConfig cfg;
    cfg.cacheDir = sharedCache;
    std::string coldPayload;
    {
        LiveServer live("serve-explore-a", cfg);
        auto client = live.client();
        const auto cold =
            roundTrip(client, exploreRequest("c", trace));
        ASSERT_TRUE(cold.ok) << cold.code << ": " << cold.message;
        EXPECT_EQ(cold.result, expected); // cold == CLI
        coldPayload = cold.result;
        EXPECT_EQ(live.counter("serve/disk_cache_misses"), 2.0);

        // Warm via LRU within the same server.
        const auto lru = roundTrip(client, exploreRequest("l", trace));
        ASSERT_TRUE(lru.ok);
        EXPECT_EQ(lru.result, expected);
        EXPECT_EQ(live.counter("serve/computations"), 1.0);
    }

    // A fresh server (cold LRU) sharing the cache directory serves the
    // same bytes from disk: crash-safe warm restarts.
    LiveServer live("serve-explore-b", cfg);
    auto client = live.client();
    const auto disk = roundTrip(client, exploreRequest("d", trace));
    ASSERT_TRUE(disk.ok);
    EXPECT_EQ(disk.result, expected);
    EXPECT_EQ(disk.result, coldPayload);
    EXPECT_EQ(live.counter("serve/disk_cache_hits"), 2.0);
}

TEST(Serve, ExpiredDeadlineCancelsJobWithTimeoutError)
{
    const auto trace = traceText(trace::Benchmark::MG, 16);
    LiveServer live("serve-deadline");
    auto client = live.client();

    // A 1 ms deadline covers queue wait + compute; by the first
    // cooperative checkpoint it has expired.
    const auto r =
        roundTrip(client, exploreRequest("d1", trace, /*deadline*/ 1));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.code, "timeout");
    EXPECT_EQ(r.id, "d1");
    EXPECT_EQ(live.counter("serve/errors_timeout"), 1.0);

    // The daemon is healthy and fully quiesced afterwards.
    const auto pong =
        roundTrip(client, "{\"id\": \"p\", \"cmd\": \"ping\"}");
    EXPECT_TRUE(pong.ok);
}

TEST(Serve, ConcurrentIdenticalSubmissionsComputeExactlyOnce)
{
    const auto trace = traceText(trace::Benchmark::MG, 16);
    ServerConfig cfg;
    cfg.workers = 4;
    LiveServer live("serve-dedup", cfg);

    constexpr int kWave = 6;
    std::vector<Reply> replies(kWave);
    {
        std::vector<std::jthread> wave;
        wave.reserve(kWave);
        for (int i = 0; i < kWave; ++i) {
            wave.emplace_back([&, i] {
                auto client = live.client();
                replies[static_cast<std::size_t>(i)] = roundTrip(
                    client,
                    designRequest("w" + std::to_string(i), trace, 2));
            });
        }
    }

    for (int i = 0; i < kWave; ++i) {
        ASSERT_TRUE(replies[static_cast<std::size_t>(i)].ok)
            << replies[static_cast<std::size_t>(i)].code;
        EXPECT_EQ(replies[static_cast<std::size_t>(i)].id,
                  "w" + std::to_string(i));
        EXPECT_EQ(replies[static_cast<std::size_t>(i)].result,
                  replies[0].result); // byte-identical fan-out
    }
    EXPECT_EQ(live.counter("serve/computations"), 1.0);
    EXPECT_EQ(live.counter("serve/responses_ok"),
              static_cast<double>(kWave));
}

TEST(Serve, AdmissionControlRejectsPastHighWaterMark)
{
    const auto trace = traceText(trace::Benchmark::MG, 16);
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = 1;
    LiveServer live("serve-backpressure", cfg);
    auto client = live.client();

    // Occupy the single worker...
    ASSERT_TRUE(client.sendLine(exploreRequest("q0", trace)));
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    // ...then flood: one fits the queue, the rest must be rejected
    // immediately with queue_full (not stall, not queue unboundedly).
    constexpr int kFlood = 4;
    for (int i = 1; i <= kFlood; ++i)
        ASSERT_TRUE(client.sendLine(
            exploreRequest("q" + std::to_string(i), trace)));

    int ok = 0, queueFull = 0;
    for (int i = 0; i <= kFlood; ++i) {
        const auto line = client.recvLine();
        ASSERT_TRUE(line.has_value());
        const auto reply = parseReply(*line);
        ASSERT_TRUE(reply.has_value());
        if (reply->ok)
            ++ok;
        else if (reply->code == "queue_full")
            ++queueFull;
        else
            FAIL() << "unexpected reply: " << *line;
    }
    EXPECT_GE(queueFull, 1);
    EXPECT_GE(ok, 1);
    EXPECT_EQ(ok + queueFull, kFlood + 1);

    // Health checks bypass the queue even under backpressure.
    const auto pong =
        roundTrip(client, "{\"id\": \"p\", \"cmd\": \"ping\"}");
    EXPECT_TRUE(pong.ok);
}

TEST(Serve, StopDrainsInFlightWorkBeforeTearingDown)
{
    const auto trace = traceText(trace::Benchmark::CG, 8);
    const auto expected = expectedDesign(trace, 2);

    LiveServer live("serve-drain");
    auto client = live.client();
    ASSERT_TRUE(client.sendLine(designRequest("d", trace, 2)));
    // Let the request reach a worker, then shut down mid-compute.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    live.server->stop();

    // The drain finished the job and delivered the response before
    // closing the connection.
    const auto line = client.recvLine();
    ASSERT_TRUE(line.has_value())
        << "drain dropped an in-flight response";
    const auto reply = parseReply(*line);
    ASSERT_TRUE(reply.has_value());
    EXPECT_TRUE(reply->ok);
    EXPECT_EQ(reply->result, expected);

    // After the drain the socket is gone.
    EXPECT_FALSE(client.recvLine().has_value());
    Client again;
    EXPECT_FALSE(again.connectUnix(live.socketPath));
}
