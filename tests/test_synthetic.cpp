/**
 * @file
 * Unit tests for synthetic traffic generation and DOT export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/methodology.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/dot.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"
#include "trace/synthetic.hpp"

using namespace minnoc;
using namespace minnoc::trace;

TEST(Synthetic, PatternNames)
{
    EXPECT_EQ(patternName(Pattern::UniformRandom), "uniform");
    EXPECT_EQ(patternName(Pattern::Hotspot), "hotspot");
}

TEST(Synthetic, PatternNamesRoundTrip)
{
    for (const auto p :
         {Pattern::UniformRandom, Pattern::Transpose,
          Pattern::BitReversal, Pattern::Hotspot, Pattern::Neighbor}) {
        EXPECT_EQ(patternFromName(patternName(p)), p);
    }
    EXPECT_EXIT(patternFromName("mesh"), ::testing::ExitedWithCode(1),
                "unknown synthetic pattern");
}

TEST(PhaseShift, ValidatesConfig)
{
    EXPECT_EXIT(phaseShift({}), ::testing::ExitedWithCode(1),
                "at least one pattern");
    PhaseShiftConfig cfg;
    cfg.ranks = 1;
    EXPECT_EXIT(phaseShift({Pattern::Neighbor}, cfg),
                ::testing::ExitedWithCode(1), "two ranks");
}

TEST(PhaseShift, CallIdsSegregateByEpoch)
{
    PhaseShiftConfig cfg;
    cfg.ranks = 8;
    const auto tr =
        phaseShift({Pattern::Neighbor, Pattern::Transpose}, cfg);
    EXPECT_EQ(tr.name(), "phase-shift-neighbor-transpose");

    // Epoch e uses exactly the call-id range
    // [e*sitesPerPhase, (e+1)*sitesPerPhase): distinct call sites per
    // phase are what the segmenter's Jaccard term keys on.
    for (core::ProcId r = 0; r < cfg.ranks; ++r) {
        for (const auto &op : tr.timeline(r)) {
            if (op.kind == OpKind::Send)
                EXPECT_LT(op.callId, 2 * cfg.sitesPerPhase);
        }
    }
}

TEST(PhaseShift, NeighborEpochSendsEveryRankEveryIteration)
{
    PhaseShiftConfig cfg;
    cfg.ranks = 8;
    cfg.itersPerPhase = 4;
    const auto tr = phaseShift({Pattern::Neighbor}, cfg);
    EXPECT_EQ(tr.numSends(),
              static_cast<std::size_t>(cfg.ranks) * cfg.itersPerPhase);
}

TEST(PhaseShift, ReplaysDeadlockFreeOnAMesh)
{
    const auto tr = phaseShift(
        {Pattern::Neighbor, Pattern::Hotspot, Pattern::Transpose});
    const auto mesh = topo::buildMesh(16);
    const auto res = sim::runTrace(tr, *mesh.topo, *mesh.routing);
    EXPECT_EQ(res.packetsDelivered, tr.numSends());
    EXPECT_EQ(res.deadlockRecoveries, 0u);
}

TEST(PhaseShift, IsDeterministic)
{
    const auto a = phaseShift({Pattern::UniformRandom});
    const auto b = phaseShift({Pattern::UniformRandom});
    std::ostringstream sa, sb;
    a.save(sa);
    b.save(sb);
    EXPECT_EQ(sa.str(), sb.str());
}

TEST(Synthetic, ValidatesConfig)
{
    SyntheticConfig cfg;
    cfg.ranks = 1;
    EXPECT_EXIT(generateSynthetic(cfg), ::testing::ExitedWithCode(1),
                "two ranks");
    cfg.ranks = 4;
    cfg.load = 1.5;
    EXPECT_EXIT(generateSynthetic(cfg), ::testing::ExitedWithCode(1),
                "load");
}

TEST(Synthetic, ZeroLoadSendsNothing)
{
    SyntheticConfig cfg;
    cfg.ranks = 8;
    cfg.load = 0.0;
    const auto tr = generateSynthetic(cfg);
    EXPECT_EQ(tr.numSends(), 0u);
}

TEST(Synthetic, LoadScalesMessageCount)
{
    SyntheticConfig cfg;
    cfg.ranks = 16;
    cfg.slots = 500;
    cfg.load = 0.1;
    const auto low = generateSynthetic(cfg).numSends();
    cfg.load = 0.4;
    const auto high = generateSynthetic(cfg).numSends();
    // Roughly proportional (Bernoulli; 4x load within 30%).
    EXPECT_GT(high, 3 * low);
    EXPECT_LT(high, 5 * low + low / 2);
}

TEST(Synthetic, NeighborPatternOnlyTalksToSuccessor)
{
    SyntheticConfig cfg;
    cfg.ranks = 8;
    cfg.pattern = Pattern::Neighbor;
    cfg.load = 0.5;
    const auto tr = generateSynthetic(cfg);
    for (core::ProcId r = 0; r < 8; ++r) {
        for (const auto &op : tr.timeline(r)) {
            if (op.kind == OpKind::Send) {
                EXPECT_EQ(op.peer, (r + 1) % 8);
            }
        }
    }
}

TEST(Synthetic, HotspotConcentratesOnNodeZero)
{
    SyntheticConfig cfg;
    cfg.ranks = 16;
    cfg.pattern = Pattern::Hotspot;
    cfg.load = 0.5;
    cfg.slots = 400;
    cfg.hotspotFraction = 0.5;
    const auto tr = generateSynthetic(cfg);
    std::size_t toZero = 0;
    std::size_t total = 0;
    for (core::ProcId r = 0; r < 16; ++r) {
        for (const auto &op : tr.timeline(r)) {
            if (op.kind == OpKind::Send) {
                ++total;
                toZero += op.peer == 0;
            }
        }
    }
    // ~50% hotspot + uniform share: node 0 well above 1/15.
    EXPECT_GT(static_cast<double>(toZero) / static_cast<double>(total),
              0.35);
}

TEST(Synthetic, TransposeIsDeterministicPerSource)
{
    SyntheticConfig cfg;
    cfg.ranks = 16; // 4x4
    cfg.pattern = Pattern::Transpose;
    cfg.load = 1.0;
    cfg.slots = 4;
    const auto tr = generateSynthetic(cfg);
    for (core::ProcId r = 0; r < 16; ++r) {
        const auto expected =
            static_cast<core::ProcId>((r % 4) * 4 + r / 4);
        for (const auto &op : tr.timeline(r)) {
            if (op.kind == OpKind::Send) {
                EXPECT_EQ(op.peer, expected);
            }
        }
    }
}

TEST(Synthetic, RunsOnEveryTopology)
{
    SyntheticConfig cfg;
    cfg.ranks = 8;
    cfg.load = 0.3;
    cfg.slots = 50;
    for (const auto pattern :
         {Pattern::UniformRandom, Pattern::Transpose,
          Pattern::BitReversal, Pattern::Hotspot, Pattern::Neighbor}) {
        cfg.pattern = pattern;
        const auto tr = generateSynthetic(cfg);
        const auto mesh = topo::buildMesh(8);
        const auto res = sim::runTrace(tr, *mesh.topo, *mesh.routing);
        EXPECT_EQ(res.packetsDelivered, tr.numSends())
            << patternName(pattern);
        EXPECT_EQ(res.deadlockRecoveries, 0u);
    }
}

TEST(Synthetic, LatencyGrowsWithLoad)
{
    const auto mesh = topo::buildMesh(16);
    double prev = 0.0;
    for (const double load : {0.05, 0.7}) {
        SyntheticConfig cfg;
        cfg.ranks = 16;
        cfg.load = load;
        cfg.slots = 150;
        const auto tr = generateSynthetic(cfg);
        const auto res = sim::runTrace(tr, *mesh.topo, *mesh.routing);
        EXPECT_GT(res.avgPacketLatency, prev);
        prev = res.avgPacketLatency;
    }
}

TEST(Dot, DesignExportContainsAllElements)
{
    trace::NasConfig ncfg;
    ncfg.ranks = 8;
    ncfg.iterations = 1;
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    const auto outcome = core::runMethodology(
        trace::analyzeByCall(trace::generateCG(ncfg)), mcfg);

    std::ostringstream oss;
    topo::writeDesignDot(outcome.design, oss);
    const auto dot = oss.str();
    EXPECT_NE(dot.find("graph design {"), std::string::npos);
    for (core::ProcId p = 0; p < 8; ++p) {
        EXPECT_NE(dot.find("P" + std::to_string(p) + " "),
                  std::string::npos);
    }
    // One edge line per pipe.
    std::size_t edges = 0;
    std::size_t pos = 0;
    while ((pos = dot.find(" -- S", pos)) != std::string::npos) {
        ++edges;
        ++pos;
    }
    EXPECT_EQ(edges, outcome.design.pipes.size() + 8); // + proc edges
}

TEST(Dot, TopologyExportParsesNodes)
{
    const auto mesh = topo::buildMesh(4);
    std::ostringstream oss;
    topo::writeTopologyDot(*mesh.topo, oss);
    const auto dot = oss.str();
    EXPECT_NE(dot.find("graph \"mesh-2x2\""), std::string::npos);
    EXPECT_NE(dot.find("S3"), std::string::npos);
    EXPECT_NE(dot.find("P0"), std::string::npos);
}
