/**
 * @file
 * Unit tests for the pattern analyzer: ideal replay and by-call
 * contention extraction, including the paper's Figure-1 structure for
 * CG on 16 processors.
 */

#include <gtest/gtest.h>

#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::trace;

TEST(IdealReplay, TwoRankPingTimes)
{
    Trace t("ping", 2);
    t.push(0, TraceOp::compute(100));
    t.push(0, TraceOp::send(1, 400, 0)); // 400B = 100 cycles at 4 B/cyc
    t.push(1, TraceOp::recv(0, 400, 0));

    const auto pattern = idealReplay(t);
    ASSERT_EQ(pattern.numMessages(), 1u);
    const auto &m = pattern.messages()[0];
    EXPECT_EQ(m.src, 0u);
    EXPECT_EQ(m.dst, 1u);
    // tStart = compute 100 + send overhead 10.
    EXPECT_DOUBLE_EQ(m.tStart, 110.0);
    // transfer = wire 1 + 400/4 = 101.
    EXPECT_DOUBLE_EQ(m.tFinish, 211.0);
    EXPECT_EQ(m.callId, 0u);
}

TEST(IdealReplay, RecvWaitsForSend)
{
    Trace t("wait", 2);
    t.push(0, TraceOp::compute(1000));
    t.push(0, TraceOp::send(1, 4, 0));
    t.push(1, TraceOp::recv(0, 4, 0)); // rank 1 waits from time 0
    t.push(1, TraceOp::send(0, 4, 1));
    t.push(0, TraceOp::recv(1, 4, 1));
    const auto pattern = idealReplay(t);
    ASSERT_EQ(pattern.numMessages(), 2u);
    // Second message starts only after rank 1 received the first
    // (1010 finish + 1 wire + 1 payload = 1012; + recv overhead 10 +
    // send overhead 10 = 1032).
    EXPECT_DOUBLE_EQ(pattern.messages()[1].tStart, 1032.0);
}

TEST(IdealReplay, DeadlockedTracePanics)
{
    Trace t("dead", 2);
    t.push(0, TraceOp::recv(1, 4, 0));
    t.push(1, TraceOp::recv(0, 4, 1));
    // Make it structurally matched so validateMatching passes, but the
    // recvs precede the sends: replay must detect the cycle.
    t.push(0, TraceOp::send(1, 4, 1));
    t.push(1, TraceOp::send(0, 4, 0));
    EXPECT_DEATH(idealReplay(t), "deadlock");
}

TEST(IdealReplay, ChannelFifoOrdering)
{
    Trace t("fifo", 2);
    t.push(0, TraceOp::send(1, 4, 0));
    t.push(0, TraceOp::send(1, 4000, 1));
    t.push(1, TraceOp::recv(0, 4, 0));
    t.push(1, TraceOp::recv(0, 4000, 1));
    const auto pattern = idealReplay(t);
    ASSERT_EQ(pattern.numMessages(), 2u);
    EXPECT_LT(pattern.messages()[0].tStart,
              pattern.messages()[1].tStart);
}

TEST(AnalyzeByCall, CgSixteenMatchesFigureOne)
{
    // The paper's Figure 1: CG on 16 processors has three distinct
    // contention periods — two row-reduce exchanges (full permutations
    // of 16 comms) and the matrix transpose (partial permutation of 12,
    // diagonal silent).
    NasConfig cfg;
    cfg.ranks = 16;
    cfg.iterations = 3;
    const auto tr = generateCG(cfg);
    auto ks = analyzeByCall(tr);
    ks.reduceToMaximum();

    EXPECT_EQ(ks.numCliques(), 3u);
    std::multiset<std::size_t> sizes;
    for (const auto &k : ks.cliques())
        sizes.insert(k.size());
    EXPECT_EQ(sizes, (std::multiset<std::size_t>{12, 16, 16}));
    EXPECT_EQ(ks.numComms(), 44u);

    // Spot-check the transpose pairs of Figure 1 (0-based): (2-1,5-1)
    // in the paper is (1, 4) here.
    EXPECT_NE(ks.findComm(core::Comm(1, 4)), core::CliqueSet::kNoComm);
    EXPECT_NE(ks.findComm(core::Comm(3, 12)), core::CliqueSet::kNoComm);
    // Diagonal processors stay silent in the transpose: (0,0)-style
    // comms never exist, and e.g. proc 0 only talks to row mates.
    EXPECT_EQ(ks.findComm(core::Comm(0, 12)), core::CliqueSet::kNoComm);
}

TEST(AnalyzeByCall, RepeatedIterationsCollapse)
{
    NasConfig cfg;
    cfg.ranks = 16;
    cfg.iterations = 1;
    const auto one = analyzeByCall(generateCG(cfg));
    cfg.iterations = 5;
    const auto five = analyzeByCall(generateCG(cfg));
    EXPECT_EQ(one.numCliques(), five.numCliques());
    EXPECT_EQ(one.numComms(), five.numComms());
}

TEST(AnalyzeByCall, SweepAgreesOnSynchronizedTraces)
{
    // With zero skew the timed sweep extraction and the by-call
    // extraction must agree on the comms and contend relation.
    NasConfig cfg;
    cfg.ranks = 8;
    cfg.iterations = 1;
    cfg.skew = 0.0;
    const auto tr = generateCG(cfg);
    auto byCall = analyzeByCall(tr);
    byCall.reduceToMaximum();
    const auto pattern = idealReplay(tr);
    auto swept = pattern.extractCliqueSet();

    EXPECT_EQ(swept.numComms(), byCall.numComms());
    // Every by-call contention pair is also a swept contention pair
    // (the sweep can only see more overlap, never less, since phases
    // execute back-to-back).
    for (core::CommId a = 0; a < byCall.numComms(); ++a) {
        for (core::CommId b = a + 1; b < byCall.numComms(); ++b) {
            if (!byCall.contend(a, b))
                continue;
            const auto sa = swept.findComm(byCall.comm(a));
            const auto sb = swept.findComm(byCall.comm(b));
            ASSERT_NE(sa, core::CliqueSet::kNoComm);
            ASSERT_NE(sb, core::CliqueSet::kNoComm);
        }
    }
}

TEST(AnalyzeByCall, SkewCreatesAtMostMorePeriods)
{
    NasConfig cfg;
    cfg.ranks = 8;
    cfg.iterations = 2;
    cfg.skew = 0.0;
    const auto calm = idealReplay(generateCG(cfg)).extractCliqueSet();
    cfg.skew = 0.4;
    const auto skewed = idealReplay(generateCG(cfg)).extractCliqueSet();
    // Heavy skew smears phase boundaries: never fewer comms, and the
    // clique count should not collapse below the calm case.
    EXPECT_GE(skewed.numComms(), calm.numComms());
}
