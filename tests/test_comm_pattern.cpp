/**
 * @file
 * Unit tests for the time-conflict model: overlap relation, contention
 * set, and contention-period (clique) extraction.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/comm_pattern.hpp"

using namespace minnoc::core;

namespace {

/** Shorthand message constructor. */
Message
msg(ProcId s, ProcId d, double ts, double tf, std::uint32_t call = 0)
{
    return Message(s, d, ts, tf, 100, call);
}

} // namespace

TEST(Message, OverlapClosedIntervals)
{
    // Closed intervals: touching endpoints DO overlap (Definition 3).
    EXPECT_TRUE(msg(0, 1, 0, 10).overlaps(msg(2, 3, 10, 20)));
    EXPECT_TRUE(msg(2, 3, 10, 20).overlaps(msg(0, 1, 0, 10)));
    EXPECT_FALSE(msg(0, 1, 0, 10).overlaps(msg(2, 3, 10.5, 20)));
    EXPECT_TRUE(msg(0, 1, 0, 10).overlaps(msg(2, 3, 2, 4))); // containment
    EXPECT_TRUE(msg(0, 1, 5, 6).overlaps(msg(2, 3, 0, 10)));
}

TEST(CommPattern, RejectsBadMessages)
{
    CommPattern p(4);
    EXPECT_DEATH(p.addMessage(msg(0, 9, 0, 1)), "references proc");
    EXPECT_DEATH(p.addMessage(msg(0, 1, 5, 2)), "finishes before");
}

TEST(CommPattern, OverlapRelationBasic)
{
    CommPattern p(6);
    p.addMessage(msg(0, 1, 0, 10));  // 0
    p.addMessage(msg(2, 3, 5, 15));  // 1 overlaps 0
    p.addMessage(msg(4, 5, 20, 30)); // 2 overlaps none
    const auto rel = p.overlapRelation();
    ASSERT_EQ(rel.size(), 1u);
    EXPECT_EQ(rel[0], (std::pair<std::size_t, std::size_t>{0, 1}));
}

TEST(CommPattern, OverlapRelationChainNotTransitive)
{
    CommPattern p(8);
    p.addMessage(msg(0, 1, 0, 10));
    p.addMessage(msg(2, 3, 8, 20));
    p.addMessage(msg(4, 5, 18, 30)); // overlaps msg1 but not msg0
    const auto rel = p.overlapRelation();
    EXPECT_EQ(rel.size(), 2u);
    EXPECT_TRUE(std::find(rel.begin(), rel.end(),
                          std::pair<std::size_t, std::size_t>{0, 2}) ==
                rel.end());
}

TEST(CommPattern, ContentionSetExcludesSameComm)
{
    CommPattern p(4);
    p.addMessage(msg(0, 1, 0, 10));
    p.addMessage(msg(0, 1, 5, 15)); // same (s,d): not a contention tuple
    EXPECT_TRUE(p.contentionSet().empty());
}

TEST(CommPattern, ContentionSetSymmetricClosure)
{
    CommPattern p(4);
    p.addMessage(msg(0, 1, 0, 10));
    p.addMessage(msg(2, 3, 5, 15));
    const auto cs = p.contentionSet();
    EXPECT_EQ(cs.size(), 2u);
}

TEST(CommPattern, CliqueExtractionSeparatePeriods)
{
    CommPattern p(8);
    // Period A: three simultaneous messages.
    p.addMessage(msg(0, 1, 0, 10));
    p.addMessage(msg(2, 3, 0, 10));
    p.addMessage(msg(4, 5, 0, 10));
    // Period B: two simultaneous messages, disjoint in time.
    p.addMessage(msg(0, 2, 20, 30));
    p.addMessage(msg(4, 6, 20, 30));
    const auto ks = p.extractCliqueSet();
    ASSERT_EQ(ks.numCliques(), 2u);
    EXPECT_EQ(ks.maxCliqueSize(), 3u);
}

TEST(CommPattern, CliqueExtractionStaggeredWindows)
{
    // msgs: a[0,10], b[5,15], c[12,20] -- maximal active sets are
    // {a,b} and {b,c}.
    CommPattern p(8);
    p.addMessage(msg(0, 1, 0, 10));
    p.addMessage(msg(2, 3, 5, 15));
    p.addMessage(msg(4, 5, 12, 20));
    const auto ks = p.extractCliqueSet(false);
    ASSERT_EQ(ks.numCliques(), 2u);
    for (const auto &k : ks.cliques())
        EXPECT_EQ(k.size(), 2u);
}

TEST(CommPattern, MaximumReductionDropsSubsets)
{
    // One long message spans two periods; without reduction we see the
    // sub-clique too.
    CommPattern p(8);
    p.addMessage(msg(0, 1, 0, 30));  // long
    p.addMessage(msg(2, 3, 0, 10));  // with long: {l, x}
    p.addMessage(msg(4, 5, 5, 10));  // {l, x, y}
    const auto unreduced = p.extractCliqueSet(false);
    const auto reduced = p.extractCliqueSet(true);
    EXPECT_GE(unreduced.numCliques(), reduced.numCliques());
    EXPECT_EQ(reduced.numCliques(), 1u);
    EXPECT_EQ(reduced.maxCliqueSize(), 3u);
}

TEST(CommPattern, DuplicatePeriodsCollapse)
{
    // Phase-parallel repetition: the same pattern twice in time yields
    // one distinct clique.
    CommPattern p(4);
    p.addMessage(msg(0, 1, 0, 10));
    p.addMessage(msg(2, 3, 0, 10));
    p.addMessage(msg(0, 1, 100, 110));
    p.addMessage(msg(2, 3, 100, 110));
    const auto ks = p.extractCliqueSet();
    EXPECT_EQ(ks.numCliques(), 1u);
}

TEST(CommPattern, ByCallGroupsRegardlessOfTime)
{
    CommPattern p(4);
    p.addMessage(msg(0, 1, 0, 10, 7));
    p.addMessage(msg(2, 3, 500, 510, 7)); // same call, skewed in time
    p.addMessage(msg(1, 0, 5, 15, 8));
    const auto ks = p.cliqueSetByCall();
    ASSERT_EQ(ks.numCliques(), 2u);
    EXPECT_EQ(ks.maxCliqueSize(), 2u);
}

TEST(CommPattern, TimeSpanAndBytes)
{
    CommPattern p(4);
    EXPECT_EQ(p.timeSpan(), (std::pair<double, double>{0.0, 0.0}));
    p.addMessage(msg(0, 1, 3, 9));
    p.addMessage(msg(2, 3, 1, 7));
    EXPECT_EQ(p.timeSpan(), (std::pair<double, double>{1.0, 9.0}));
    EXPECT_EQ(p.totalBytes(), 200u);
}

TEST(CommPattern, SweepMatchesBruteForceOnRandomIntervals)
{
    // Property: every extracted clique is a set of pairwise-overlapping
    // messages, and every overlapping pair appears in some clique.
    CommPattern p(32);
    std::uint64_t state = 12345;
    auto rnd = [&state](std::uint64_t m) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return (state >> 33) % m;
    };
    for (int i = 0; i < 40; ++i) {
        const auto s = static_cast<ProcId>(rnd(16));
        const auto d = static_cast<ProcId>(16 + rnd(16));
        const double ts = static_cast<double>(rnd(100));
        const double tf = ts + 1 + static_cast<double>(rnd(20));
        p.addMessage(msg(s, d, ts, tf));
    }

    const auto ks = p.extractCliqueSet(false);
    const auto &msgs = p.messages();

    // Each clique's comms pairwise overlap via some witnesses: weaker
    // check -- every overlapping message pair's comms co-occur in a
    // clique (unless same comm).
    for (const auto &[i, j] : p.overlapRelation()) {
        const auto a = ks.findComm(msgs[i].comm());
        const auto b = ks.findComm(msgs[j].comm());
        ASSERT_NE(a, CliqueSet::kNoComm);
        ASSERT_NE(b, CliqueSet::kNoComm);
        if (a != b) {
            EXPECT_TRUE(ks.contend(a, b));
        }
    }
}
