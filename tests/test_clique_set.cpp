/**
 * @file
 * Unit tests for Comm packing and the communication clique set.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/clique_set.hpp"

using namespace minnoc::core;

TEST(Comm, KeyRoundTrip)
{
    const Comm c(123456, 654321);
    EXPECT_EQ(Comm::fromKey(c.key()), c);
}

TEST(Comm, OrderingSrcMajor)
{
    EXPECT_LT(Comm(0, 5), Comm(1, 0));
    EXPECT_LT(Comm(1, 0), Comm(1, 1));
}

TEST(Comm, ReversedSwaps)
{
    EXPECT_EQ(Comm(3, 7).reversed(), Comm(7, 3));
}

TEST(Comm, HashDistinguishes)
{
    std::unordered_set<Comm> set;
    set.insert(Comm(1, 2));
    set.insert(Comm(2, 1));
    set.insert(Comm(1, 2));
    EXPECT_EQ(set.size(), 2u);
}

TEST(CliqueSet, InternDeduplicates)
{
    CliqueSet ks(4);
    const CommId a = ks.internComm(Comm(0, 1));
    const CommId b = ks.internComm(Comm(0, 1));
    const CommId c = ks.internComm(Comm(1, 0));
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(ks.numComms(), 2u);
    EXPECT_EQ(ks.findComm(Comm(0, 1)), a);
    EXPECT_EQ(ks.findComm(Comm(2, 3)), CliqueSet::kNoComm);
}

TEST(CliqueSet, AddCliqueSortsAndDedups)
{
    CliqueSet ks(4);
    EXPECT_TRUE(ks.addClique({Comm(2, 3), Comm(0, 1), Comm(2, 3)}));
    ASSERT_EQ(ks.numCliques(), 1u);
    const auto &k = ks.cliques()[0];
    EXPECT_EQ(k.size(), 2u);
    EXPECT_TRUE(std::is_sorted(k.comms.begin(), k.comms.end()));
}

TEST(CliqueSet, DuplicateCliqueDropped)
{
    CliqueSet ks(4);
    EXPECT_TRUE(ks.addClique({Comm(0, 1), Comm(2, 3)}));
    EXPECT_FALSE(ks.addClique({Comm(2, 3), Comm(0, 1)}));
    EXPECT_EQ(ks.numCliques(), 1u);
}

TEST(CliqueSet, EmptyCliqueRejected)
{
    CliqueSet ks(4);
    EXPECT_FALSE(ks.addClique({}));
    EXPECT_EQ(ks.numCliques(), 0u);
}

TEST(CliqueSet, MaxCliqueSize)
{
    CliqueSet ks(8);
    ks.addClique({Comm(0, 1)});
    ks.addClique({Comm(0, 1), Comm(2, 3), Comm(4, 5)});
    EXPECT_EQ(ks.maxCliqueSize(), 3u);
}

TEST(CliqueSet, ReduceRemovesDominated)
{
    // The paper's own example: {(1,2),(2,3)} is covered by
    // {(1,2),(2,3),(3,4)} and should be removed.
    CliqueSet ks(8);
    ks.addClique({Comm(1, 2), Comm(2, 3)});
    ks.addClique({Comm(1, 2), Comm(2, 3), Comm(3, 4)});
    ks.addClique({Comm(5, 6)});
    EXPECT_EQ(ks.reduceToMaximum(), 1u);
    EXPECT_EQ(ks.numCliques(), 2u);
    EXPECT_EQ(ks.maxCliqueSize(), 3u);
}

TEST(CliqueSet, ReduceKeepsIncomparableCliques)
{
    CliqueSet ks(8);
    ks.addClique({Comm(0, 1), Comm(2, 3)});
    ks.addClique({Comm(0, 1), Comm(4, 5)});
    EXPECT_EQ(ks.reduceToMaximum(), 0u);
    EXPECT_EQ(ks.numCliques(), 2u);
}

TEST(CliqueSet, ContendReflectsCoMembership)
{
    CliqueSet ks(8);
    const CommId a = ks.internComm(Comm(0, 1));
    const CommId b = ks.internComm(Comm(2, 3));
    const CommId c = ks.internComm(Comm(4, 5));
    ks.addCliqueByIds({a, b});
    ks.addCliqueByIds({c});
    EXPECT_TRUE(ks.contend(a, b));
    EXPECT_TRUE(ks.contend(b, a));
    EXPECT_FALSE(ks.contend(a, c));
    EXPECT_FALSE(ks.contend(a, a));
}

TEST(CliqueSet, ContendIndexInvalidatedOnMutation)
{
    CliqueSet ks(8);
    const CommId a = ks.internComm(Comm(0, 1));
    const CommId b = ks.internComm(Comm(2, 3));
    ks.addCliqueByIds({a});
    EXPECT_FALSE(ks.contend(a, b));
    ks.addCliqueByIds({a, b});
    EXPECT_TRUE(ks.contend(a, b)); // rebuilt after the new clique
}

TEST(CliqueSet, ContentionSetTuples)
{
    CliqueSet ks(8);
    ks.addClique({Comm(0, 1), Comm(2, 3)});
    const auto tuples = ks.contentionSet();
    // Symmetric closure: both orders present.
    EXPECT_EQ(tuples.size(), 2u);
    EXPECT_EQ(tuples[0], (std::array<ProcId, 4>{0, 1, 2, 3}));
    EXPECT_EQ(tuples[1], (std::array<ProcId, 4>{2, 3, 0, 1}));
}

TEST(CliqueSet, AddCliqueByIdsValidatesRange)
{
    CliqueSet ks(4);
    EXPECT_DEATH(ks.addCliqueByIds({99}), "unknown comm id");
}

TEST(CliqueSet, ToStringListsCliques)
{
    CliqueSet ks(4);
    ks.addClique({Comm(0, 1)});
    const auto text = ks.toString();
    EXPECT_NE(text.find("(0,1)"), std::string::npos);
}
