/**
 * @file
 * Unit tests for the design-space exploration subsystem: Pareto
 * reduction, content-hashed job keys, the on-disk result cache, and
 * the explorer's determinism guarantees (thread-count invariance,
 * warm-rerun-recomputes-nothing).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "dse/cache.hpp"
#include "dse/explorer.hpp"
#include "dse/pareto.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::dse;

namespace {

Objectives
obj(double area, double latency, double energy)
{
    return {area, latency, energy};
}

JobMetrics
sampleMetrics()
{
    JobMetrics m;
    m.switches = 7;
    m.links = 12;
    m.channels = 24;
    m.constraintsMet = true;
    m.violations = 0;
    m.rounds = 3;
    m.switchArea = 7;
    m.linkArea = 12;
    m.procLinkArea = 5;
    m.execTime = 123456789;
    m.avgLatency = 41.125;
    m.avgHops = 2.7142857142857144; // not exactly representable in %g
    m.maxLinkUtil = 0.33333333333333331;
    m.energy = 1.2345678901234567e6;
    return m;
}

std::string
tempCacheDir(const char *leaf)
{
    const auto dir =
        std::filesystem::path(::testing::TempDir()) / leaf;
    std::filesystem::remove_all(dir);
    return dir.string();
}

} // namespace

// ---------------------------------------------------------------- Pareto

TEST(Pareto, DominatesRequiresStrictImprovement)
{
    EXPECT_TRUE(dominates(obj(1, 1, 1), obj(2, 2, 2)));
    EXPECT_TRUE(dominates(obj(1, 2, 2), obj(2, 2, 2)));
    EXPECT_FALSE(dominates(obj(2, 2, 2), obj(2, 2, 2))); // tie
    EXPECT_FALSE(dominates(obj(1, 3, 1), obj(2, 2, 2))); // trade-off
    EXPECT_FALSE(dominates(obj(2, 2, 2), obj(1, 1, 1)));
}

TEST(Pareto, FlagsDominatedAndKeepsTies)
{
    const std::vector<Objectives> pts = {
        obj(1, 5, 1), // frontier (best area)
        obj(5, 1, 1), // frontier (best latency)
        obj(5, 5, 5), // dominated by both
        obj(1, 5, 1), // exact tie with #0: kept
    };
    const auto flags = dominatedFlags(pts);
    EXPECT_EQ(flags, (std::vector<bool>{false, false, true, false}));
    EXPECT_EQ(frontierIndices(flags),
              (std::vector<std::size_t>{0, 1, 3}));
}

TEST(Pareto, SinglePointIsFrontier)
{
    const auto flags = dominatedFlags({obj(9, 9, 9)});
    EXPECT_EQ(frontierIndices(flags), (std::vector<std::size_t>{0}));
}

// ------------------------------------------------------------- Job keys

TEST(DseCache, Fnv1aMatchesReference)
{
    // Published FNV-1a test vectors.
    EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
    EXPECT_EQ(fnv1a64("a"), 12638187200555641996ull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(DseCache, JobKeyIsStableHex)
{
    const auto key = jobKey("pattern-bytes", "deg=5");
    EXPECT_EQ(key.size(), 16u);
    EXPECT_EQ(key.find_first_not_of("0123456789abcdef"),
              std::string::npos);
    EXPECT_EQ(key, jobKey("pattern-bytes", "deg=5"));
}

TEST(DseCache, JobKeySensitiveToEveryIngredient)
{
    const auto base = jobKey("pattern", "deg=5");
    EXPECT_NE(base, jobKey("pattern!", "deg=5")); // pattern changed
    EXPECT_NE(base, jobKey("pattern", "deg=6"));  // knob changed
    // Moving a byte across the boundary must not collide.
    EXPECT_NE(jobKey("ab", "c"), jobKey("a", "bc"));
}

// ----------------------------------------------------------- ResultCache

TEST(DseCache, RoundTripsRecordExactly)
{
    ResultCache cache(tempCacheDir("dse-roundtrip"));
    const auto metrics = sampleMetrics();
    cache.store("00000000deadbeef", "sig-a", metrics);

    const auto loaded = cache.load("00000000deadbeef", "sig-a");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, metrics); // bit-exact, doubles included
}

TEST(DseCache, MissesOnUnknownKey)
{
    const ResultCache cache(tempCacheDir("dse-miss"));
    EXPECT_FALSE(cache.load("0123456789abcdef", "sig").has_value());
}

TEST(DseCache, RejectsSignatureMismatch)
{
    ResultCache cache(tempCacheDir("dse-sigguard"));
    cache.store("00000000deadbeef", "sig-a", sampleMetrics());
    // Same key, different claimed parameters: the collision guard
    // must treat the record as a miss.
    EXPECT_FALSE(cache.load("00000000deadbeef", "sig-b").has_value());
}

TEST(DseCache, CorruptRecordIsQuarantinedAndRecomputable)
{
    const auto dir = tempCacheDir("dse-corrupt");
    ResultCache cache(dir);
    const auto metrics = sampleMetrics();
    cache.store("00000000deadbeef", "sig", metrics);

    // Flip one payload byte on disk: bit rot / torn write / tampering.
    const auto path =
        std::filesystem::path(dir) / "00000000deadbeef.json";
    ASSERT_TRUE(std::filesystem::exists(path));
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekg(0, std::ios::end);
        const auto size = static_cast<std::streamoff>(f.tellg());
        f.seekp(size / 2);
        f.put('~');
    }

    // The checksum catches it: miss, and the record is quarantined so
    // the evidence survives but can never be served again.
    EXPECT_FALSE(cache.load("00000000deadbeef", "sig").has_value());
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(dir) / "00000000deadbeef.json.corrupt"));

    // Recompute-and-restore produces a clean record again.
    cache.store("00000000deadbeef", "sig", metrics);
    const auto reloaded = cache.load("00000000deadbeef", "sig");
    ASSERT_TRUE(reloaded.has_value());
    EXPECT_EQ(*reloaded, metrics);
}

TEST(DseCache, TruncatedRecordIsQuarantined)
{
    const auto dir = tempCacheDir("dse-truncated");
    ResultCache cache(dir);
    cache.store("00000000deadbeef", "sig", sampleMetrics());

    const auto path =
        std::filesystem::path(dir) / "00000000deadbeef.json";
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) / 2);

    EXPECT_FALSE(cache.load("00000000deadbeef", "sig").has_value());
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(dir) / "00000000deadbeef.json.corrupt"));
}

TEST(ExplorerTest, CorruptedCacheRecordsAreRecomputedNotServed)
{
    trace::NasConfig ncfg;
    ncfg.ranks = 8;
    ncfg.iterations = 1;
    const auto tr = trace::generateCG(ncfg);
    const auto dir = tempCacheDir("dse-sabotage");

    ExploreConfig cfg;
    cfg.grid.maxDegrees = {4, 5};
    cfg.grid.restarts = {2};
    cfg.grid.seeds = {1};
    cfg.grid.unidirectional = {0};
    cfg.grid.vcs = {2};
    cfg.threads = 1;
    cfg.cacheDir = dir;
    const auto cold = explore(tr, cfg);
    ASSERT_EQ(cold.cacheMisses, cold.points.size());

    // Sabotage every record on disk.
    unsigned corrupted = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".json")
            continue;
        std::fstream f(entry.path(), std::ios::in | std::ios::out |
                                         std::ios::binary);
        f.seekp(static_cast<std::streamoff>(
            std::filesystem::file_size(entry.path()) / 2));
        f.put('~');
        ++corrupted;
    }
    ASSERT_EQ(corrupted, cold.points.size());

    // The warm run detects every corruption, recomputes, and lands on
    // byte-identical results anyway.
    const auto warm = explore(tr, cfg);
    EXPECT_EQ(warm.cacheHits, 0u);
    EXPECT_EQ(warm.cacheMisses, warm.points.size());
    EXPECT_EQ(cold.toJson(), warm.toJson());

    // And re-stored clean records make the next run all-hits again.
    const auto rewarm = explore(tr, cfg);
    EXPECT_EQ(rewarm.cacheHits, rewarm.points.size());
    EXPECT_EQ(cold.toJson(), rewarm.toJson());
}

TEST(DseCache, DisabledCacheNeverHitsNorStores)
{
    const auto dir = tempCacheDir("dse-disabled");
    ResultCache cache(dir, /*enabled=*/false);
    cache.store("00000000deadbeef", "sig", sampleMetrics());
    EXPECT_FALSE(cache.load("00000000deadbeef", "sig").has_value());
    EXPECT_FALSE(
        std::filesystem::exists(std::filesystem::path(dir) /
                                "00000000deadbeef.json"));
}

// -------------------------------------------------------------- Explorer

namespace {

/** Small but parallelizable grid on CG-8: 2 x 2 = 4 jobs. */
ExploreConfig
smallConfig(const std::string &cacheDir, std::uint32_t threads,
            bool useCache = true)
{
    ExploreConfig cfg;
    cfg.grid.maxDegrees = {4, 5};
    cfg.grid.restarts = {2};
    cfg.grid.seeds = {1};
    cfg.grid.unidirectional = {0};
    cfg.grid.vcs = {2, 3};
    cfg.threads = threads;
    cfg.cacheDir = cacheDir;
    cfg.useCache = useCache;
    return cfg;
}

trace::Trace
cgTrace()
{
    trace::NasConfig ncfg;
    ncfg.ranks = 8;
    ncfg.iterations = 1;
    return trace::generateCG(ncfg);
}

} // namespace

TEST(ExploreGridTest, ExpandsCrossProductInFixedOrder)
{
    ExploreGrid grid;
    EXPECT_EQ(grid.expand().size(), 12u); // 3 deg x 2 dir x 2 vcs

    grid.maxDegrees = {4, 6};
    grid.restarts = {2};
    grid.seeds = {1, 2};
    grid.unidirectional = {0};
    grid.vcs = {3};
    const auto jobs = grid.expand();
    ASSERT_EQ(jobs.size(), 4u);
    // Degree is the outermost loop, seed inside it.
    EXPECT_EQ(jobs[0].maxDegree, 4u);
    EXPECT_EQ(jobs[0].seed, 1u);
    EXPECT_EQ(jobs[1].maxDegree, 4u);
    EXPECT_EQ(jobs[1].seed, 2u);
    EXPECT_EQ(jobs[2].maxDegree, 6u);
    EXPECT_EQ(jobs[3].maxDegree, 6u);
    EXPECT_EQ(jobs[3].vcDepth, grid.vcDepth);
}

TEST(ExplorerTest, SignatureCoversEveryStage)
{
    const ExploreConfig cfg;
    JobParams a;
    const auto base = jobSignature(a, cfg);
    EXPECT_NE(base.find("deg="), std::string::npos);

    JobParams b = a;
    b.numVcs += 1; // only the simulator stage changes
    EXPECT_NE(base, jobSignature(b, cfg));

    ExploreConfig cfg2;
    cfg2.power.switchEnergyPerFlit *= 2.0; // only power changes
    EXPECT_NE(base, jobSignature(a, cfg2));
}

TEST(ExplorerTest, ReportIsThreadCountInvariant)
{
    const auto tr = cgTrace();
    // Separate cold caches so neither run can hit the other's store.
    const auto r1 =
        explore(tr, smallConfig(tempCacheDir("dse-t1"), 1));
    const auto r4 =
        explore(tr, smallConfig(tempCacheDir("dse-t4"), 4));

    EXPECT_EQ(r1.cacheHits, 0u);
    EXPECT_EQ(r4.cacheHits, 0u);
    EXPECT_EQ(r1.toJson(), r4.toJson()); // byte-identical
    EXPECT_EQ(r1.summaryTable(), r4.summaryTable());
}

TEST(ExplorerTest, WarmRerunRecomputesNothing)
{
    const auto tr = cgTrace();
    const auto dir = tempCacheDir("dse-warm");

    const auto cold = explore(tr, smallConfig(dir, 2));
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(cold.cacheMisses, cold.points.size());

    const auto warm = explore(tr, smallConfig(dir, 2));
    EXPECT_EQ(warm.cacheHits, warm.points.size()); // 100% hit rate
    EXPECT_EQ(warm.cacheMisses, 0u);
    for (const auto &p : warm.points)
        EXPECT_TRUE(p.fromCache);
    EXPECT_EQ(cold.toJson(), warm.toJson()); // byte-identical
}

TEST(ExplorerTest, FrontierIsConsistent)
{
    const auto tr = cgTrace();
    const auto report =
        explore(tr, smallConfig(tempCacheDir("dse-front"), 2));

    ASSERT_EQ(report.points.size(), 4u);
    EXPECT_EQ(report.pattern, tr.name());
    EXPECT_EQ(report.ranks, 8u);
    EXPECT_FALSE(report.frontier.empty());
    for (std::size_t i = 0; i < report.points.size(); ++i) {
        const bool onFrontier =
            std::find(report.frontier.begin(), report.frontier.end(),
                      i) != report.frontier.end();
        EXPECT_EQ(onFrontier, !report.points[i].dominated);
    }
}

TEST(ExplorerTest, DisabledCacheStoresNothing)
{
    const auto tr = cgTrace();
    const auto dir = tempCacheDir("dse-nocache");
    const auto report =
        explore(tr, smallConfig(dir, 2, /*useCache=*/false));
    EXPECT_EQ(report.cacheHits, 0u);
    EXPECT_EQ(report.cacheMisses, report.points.size());
    EXPECT_TRUE(!std::filesystem::exists(dir) ||
                std::filesystem::is_empty(dir));
}
