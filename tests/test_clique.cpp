/**
 * @file
 * Unit tests for Bron-Kerbosch maximal clique enumeration.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/clique.hpp"
#include "util/rng.hpp"

using namespace minnoc::graph;
using minnoc::Rng;

TEST(Cliques, EmptyGraph)
{
    Ugraph g;
    const auto cliques = maximalCliques(g);
    // Convention: the empty graph has one (empty) maximal clique.
    ASSERT_EQ(cliques.size(), 1u);
    EXPECT_TRUE(cliques[0].empty());
    EXPECT_TRUE(maximumClique(g).empty());
    EXPECT_EQ(cliqueNumber(g), 0u);
}

TEST(Cliques, EdgelessGraphSingletons)
{
    Ugraph g(4);
    const auto cliques = maximalCliques(g);
    EXPECT_EQ(cliques.size(), 4u);
    for (const auto &k : cliques)
        EXPECT_EQ(k.size(), 1u);
    EXPECT_EQ(cliqueNumber(g), 1u);
}

TEST(Cliques, Triangle)
{
    Ugraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 2);
    const auto cliques = maximalCliques(g);
    ASSERT_EQ(cliques.size(), 1u);
    EXPECT_EQ(cliques[0], (std::vector<NodeId>{0, 1, 2}));
}

TEST(Cliques, PathGraphEdges)
{
    Ugraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    const auto cliques = maximalCliques(g);
    EXPECT_EQ(cliques.size(), 3u);
    for (const auto &k : cliques)
        EXPECT_EQ(k.size(), 2u);
}

TEST(Cliques, TwoTrianglesSharedVertex)
{
    Ugraph g(5);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 2);
    g.addEdge(2, 3);
    g.addEdge(3, 4);
    g.addEdge(2, 4);
    const auto cliques = maximalCliques(g);
    ASSERT_EQ(cliques.size(), 2u);
    EXPECT_EQ(cliques[0].size(), 3u);
    EXPECT_EQ(cliques[1].size(), 3u);
}

TEST(Cliques, LimitCapsOutput)
{
    Ugraph g(6); // edgeless: 6 maximal cliques
    const auto cliques = maximalCliques(g, 2);
    EXPECT_EQ(cliques.size(), 2u);
}

TEST(Cliques, MaximumCliqueOnMixedGraph)
{
    // K4 plus a pendant edge.
    Ugraph g(5);
    for (NodeId a = 0; a < 4; ++a) {
        for (NodeId b = a + 1; b < 4; ++b)
            g.addEdge(a, b);
    }
    g.addEdge(3, 4);
    EXPECT_EQ(cliqueNumber(g), 4u);
    EXPECT_EQ(maximumClique(g), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Cliques, AllReportedCliquesAreMaximal)
{
    Rng rng(77);
    Ugraph g(14);
    for (NodeId a = 0; a < 14; ++a) {
        for (NodeId b = a + 1; b < 14; ++b) {
            if (rng.chance(0.45))
                g.addEdge(a, b);
        }
    }
    const auto cliques = maximalCliques(g);
    for (const auto &k : cliques) {
        EXPECT_TRUE(g.isClique(k));
        // No vertex outside k is adjacent to all of k (maximality).
        for (NodeId v = 0; v < g.numNodes(); ++v) {
            if (std::binary_search(k.begin(), k.end(), v))
                continue;
            bool adjacentToAll = true;
            for (const NodeId u : k)
                adjacentToAll &= g.hasEdge(u, v);
            EXPECT_FALSE(adjacentToAll)
                << "vertex " << v << " extends a reported clique";
        }
    }
}

TEST(Cliques, EveryVertexCovered)
{
    Rng rng(5);
    Ugraph g(10);
    for (NodeId a = 0; a < 10; ++a) {
        for (NodeId b = a + 1; b < 10; ++b) {
            if (rng.chance(0.3))
                g.addEdge(a, b);
        }
    }
    const auto cliques = maximalCliques(g);
    std::vector<bool> covered(10, false);
    for (const auto &k : cliques) {
        for (const NodeId v : k)
            covered[v] = true;
    }
    for (NodeId v = 0; v < 10; ++v)
        EXPECT_TRUE(covered[v]);
}
