/**
 * @file
 * Unit tests for trace representation and serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace.hpp"

using namespace minnoc;
using namespace minnoc::trace;

TEST(TraceOps, Factories)
{
    const auto c = TraceOp::compute(100);
    EXPECT_EQ(c.kind, OpKind::Compute);
    EXPECT_EQ(c.cycles, 100);

    const auto s = TraceOp::send(3, 4096, 7);
    EXPECT_EQ(s.kind, OpKind::Send);
    EXPECT_EQ(s.peer, 3u);
    EXPECT_EQ(s.bytes, 4096u);
    EXPECT_EQ(s.callId, 7u);

    const auto r = TraceOp::recv(2, 64, 1);
    EXPECT_EQ(r.kind, OpKind::Recv);
}

TEST(Trace, PushValidation)
{
    Trace t("t", 2);
    EXPECT_DEATH(t.push(5, TraceOp::compute(1)), "out of range");
    EXPECT_DEATH(t.push(0, TraceOp::send(9, 1, 0)), "out of range");
    EXPECT_DEATH(t.push(0, TraceOp::send(0, 1, 0)), "itself");
}

TEST(Trace, Accounting)
{
    Trace t("t", 2);
    t.push(0, TraceOp::compute(100));
    t.push(0, TraceOp::send(1, 1024, 0));
    t.push(1, TraceOp::recv(0, 1024, 0));
    t.push(1, TraceOp::compute(50));
    t.push(1, TraceOp::send(0, 2048, 3));
    t.push(0, TraceOp::recv(1, 2048, 3));

    EXPECT_EQ(t.numSends(), 2u);
    EXPECT_EQ(t.totalSendBytes(), 3072u);
    EXPECT_EQ(t.totalComputeCycles(), 150);
    EXPECT_EQ(t.numCalls(), 4u);
    EXPECT_NO_FATAL_FAILURE(t.validateMatching());
}

TEST(Trace, UnmatchedSendDetected)
{
    Trace t("bad", 2);
    t.push(0, TraceOp::send(1, 100, 0));
    EXPECT_DEATH(t.validateMatching(), "unmatched");
}

TEST(Trace, MismatchedCallIdDetected)
{
    Trace t("bad", 2);
    t.push(0, TraceOp::send(1, 100, 0));
    t.push(1, TraceOp::recv(0, 100, 9));
    EXPECT_DEATH(t.validateMatching(), "unmatched");
}

TEST(Trace, SaveLoadRoundTrip)
{
    Trace t("roundtrip", 3);
    t.push(0, TraceOp::compute(42));
    t.push(0, TraceOp::send(1, 512, 2));
    t.push(1, TraceOp::recv(0, 512, 2));
    t.push(2, TraceOp::compute(7));

    std::stringstream ss;
    t.save(ss);
    const Trace loaded = Trace::load(ss);
    EXPECT_EQ(loaded, t);
    EXPECT_EQ(loaded.name(), "roundtrip");
    EXPECT_EQ(loaded.numRanks(), 3u);
}

TEST(Trace, LoadRejectsGarbage)
{
    std::stringstream ss("not a trace");
    EXPECT_EXIT(Trace::load(ss), ::testing::ExitedWithCode(1),
                "bad header");
}

TEST(Trace, EmptyTraceRoundTrip)
{
    Trace t("empty", 2);
    std::stringstream ss;
    t.save(ss);
    const Trace loaded = Trace::load(ss);
    EXPECT_EQ(loaded, t);
    EXPECT_EQ(loaded.numSends(), 0u);
    EXPECT_EQ(loaded.numCalls(), 0u);
}
