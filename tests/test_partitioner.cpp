/**
 * @file
 * Unit tests for the main partitioning algorithm.
 */

#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"
#include "util/rng.hpp"

using namespace minnoc::core;
using minnoc::Rng;

namespace {

CliqueSet
cgCliques(std::uint32_t ranks)
{
    minnoc::trace::NasConfig cfg;
    cfg.ranks = ranks;
    cfg.iterations = 1;
    const auto tr = minnoc::trace::generateCG(cfg);
    auto ks = minnoc::trace::analyzeByCall(tr);
    ks.reduceToMaximum();
    return ks;
}

} // namespace

TEST(Partitioner, TrivialPatternAlreadySatisfied)
{
    CliqueSet ks(4);
    ks.addClique({Comm(0, 1)});
    DesignNetwork net(ks);
    PartitionerConfig cfg;
    cfg.constraints.maxDegree = 8; // 4 procs, no links: degree 4 <= 8
    const auto result = partitionNetwork(net, cfg);
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.numSplits, 0u);
    EXPECT_EQ(net.numSwitches(), 1u);
}

TEST(Partitioner, SplitsUntilDegreeConstraintHolds)
{
    CliqueSet ks = cgCliques(16);
    DesignNetwork net(ks);
    PartitionerConfig cfg;
    cfg.constraints.maxDegree = 5;
    cfg.paranoid = true;
    const auto result = partitionNetwork(net, cfg);
    EXPECT_TRUE(result.feasible);
    EXPECT_GT(result.numSplits, 0u);
    for (SwitchId s = 0; s < net.numSwitches(); ++s) {
        if (!net.procsOf(s).empty()) {
            EXPECT_LE(net.estimatedDegree(s), 5u);
        }
    }
}

TEST(Partitioner, DeterministicForFixedSeed)
{
    CliqueSet ks = cgCliques(16);
    PartitionerConfig cfg;
    cfg.constraints.maxDegree = 5;
    cfg.seed = 42;

    DesignNetwork a(ks);
    const auto ra = partitionNetwork(a, cfg);
    DesignNetwork b(ks);
    const auto rb = partitionNetwork(b, cfg);

    EXPECT_EQ(ra.numSplits, rb.numSplits);
    EXPECT_EQ(ra.numMoves, rb.numMoves);
    EXPECT_EQ(a.numSwitches(), b.numSwitches());
    EXPECT_EQ(a.totalEstimatedLinks(), b.totalEstimatedLinks());
    for (ProcId p = 0; p < 16; ++p)
        EXPECT_EQ(a.homeOf(p), b.homeOf(p));
}

TEST(Partitioner, InfeasibleConstraintsReported)
{
    // An 8-way all-to-all in a single contention period: every proc has
    // 7 mutually conflicting outgoing comms, so degree 2 can never hold.
    CliqueSet ks(8);
    std::vector<Comm> comms;
    for (ProcId s = 0; s < 8; ++s) {
        for (ProcId d = 0; d < 8; ++d) {
            if (s != d)
                comms.emplace_back(s, d);
        }
    }
    ks.addClique(comms);
    DesignNetwork net(ks);
    PartitionerConfig cfg;
    cfg.constraints.maxDegree = 2;
    const auto result = partitionNetwork(net, cfg);
    EXPECT_FALSE(result.feasible);
}

TEST(Partitioner, HistoryRecordsSplitsAndMoves)
{
    CliqueSet ks = cgCliques(8);
    DesignNetwork net(ks);
    PartitionerConfig cfg;
    cfg.constraints.maxDegree = 5;
    const auto result = partitionNetwork(net, cfg);

    std::uint32_t splits = 0;
    std::uint32_t moves = 0;
    for (const auto &step : result.history) {
        splits += step.kind == PartitionStep::Kind::Split;
        moves += step.kind == PartitionStep::Kind::Move;
    }
    EXPECT_EQ(splits, result.numSplits);
    EXPECT_EQ(moves, result.numMoves);
}

TEST(Partitioner, MaxProcsPerSwitchConstraint)
{
    CliqueSet ks = cgCliques(8);
    DesignNetwork net(ks);
    PartitionerConfig cfg;
    cfg.constraints.maxDegree = 64;
    cfg.constraints.maxProcsPerSwitch = 2;
    const auto result = partitionNetwork(net, cfg);
    EXPECT_TRUE(result.feasible);
    for (SwitchId s = 0; s < net.numSwitches(); ++s)
        EXPECT_LE(net.procsOf(s).size(), 2u);
}

TEST(Partitioner, AnnealModeStillConverges)
{
    CliqueSet ks = cgCliques(16);
    DesignNetwork net(ks);
    PartitionerConfig cfg;
    cfg.constraints.maxDegree = 5;
    cfg.anneal = true;
    cfg.paranoid = true;
    const auto result = partitionNetwork(net, cfg);
    EXPECT_TRUE(result.feasible);
    for (SwitchId s = 0; s < net.numSwitches(); ++s) {
        if (!net.procsOf(s).empty()) {
            EXPECT_LE(net.estimatedDegree(s), 5u);
        }
    }
}

TEST(Partitioner, SplitBudgetStopsRunaway)
{
    CliqueSet ks = cgCliques(16);
    DesignNetwork net(ks);
    PartitionerConfig cfg;
    cfg.constraints.maxDegree = 5;
    cfg.maxSplits = 1;
    const auto result = partitionNetwork(net, cfg);
    EXPECT_LE(result.numSplits, 1u);
}

TEST(Partitioner, MovesNeverEmptyASwitch)
{
    CliqueSet ks = cgCliques(16);
    DesignNetwork net(ks);
    PartitionerConfig cfg;
    cfg.constraints.maxDegree = 5;
    partitionNetwork(net, cfg);
    // Every switch created by a split keeps at least one processor OR
    // carries transit traffic; in particular no (2,0) un-split shape.
    std::size_t totalProcs = 0;
    for (SwitchId s = 0; s < net.numSwitches(); ++s)
        totalProcs += net.procsOf(s).size();
    EXPECT_EQ(totalProcs, 16u);
}

TEST(Partitioner, EstimateNeverBelowOnePerUsedPipe)
{
    CliqueSet ks = cgCliques(16);
    DesignNetwork net(ks);
    PartitionerConfig cfg;
    cfg.constraints.maxDegree = 5;
    partitionNetwork(net, cfg);
    for (const auto &key : net.pipes()) {
        const auto &pipe = net.pipe(key);
        if (!pipe.fwd.empty() || !pipe.bwd.empty()) {
            EXPECT_GE(net.fastColor(key), 1u);
        }
    }
}
