/**
 * @file
 * Unit tests for the synthetic NAS trace generators.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::trace;

TEST(Benchmarks, NamesRoundTrip)
{
    for (const auto b : kAllBenchmarks)
        EXPECT_EQ(benchmarkFromName(benchmarkName(b)), b);
    EXPECT_EXIT(benchmarkFromName("XX"), ::testing::ExitedWithCode(1),
                "unknown benchmark");
}

TEST(Benchmarks, ConfigRanks)
{
    EXPECT_EQ(smallConfigRanks(Benchmark::BT), 9u);
    EXPECT_EQ(smallConfigRanks(Benchmark::SP), 9u);
    EXPECT_EQ(smallConfigRanks(Benchmark::CG), 8u);
    EXPECT_EQ(largeConfigRanks(Benchmark::CG), 16u);
}

/** Every benchmark at both paper configurations. */
class GeneratorSweep
    : public ::testing::TestWithParam<std::tuple<Benchmark, bool>>
{
  protected:
    Trace
    make()
    {
        const auto [bench, large] = GetParam();
        NasConfig cfg;
        cfg.ranks = large ? largeConfigRanks(bench)
                          : smallConfigRanks(bench);
        cfg.iterations = 2;
        return generateBenchmark(bench, cfg);
    }
};

TEST_P(GeneratorSweep, StructurallySane)
{
    const auto tr = make();
    EXPECT_GT(tr.numSends(), 0u);
    EXPECT_GT(tr.totalSendBytes(), 0u);
    EXPECT_GT(tr.totalComputeCycles(), 0);
    EXPECT_GT(tr.numCalls(), 0u);
    // validateMatching ran inside take(); run again defensively.
    EXPECT_NO_FATAL_FAILURE(tr.validateMatching());
    // The trace must replay without deadlock.
    const auto pattern = idealReplay(tr);
    EXPECT_EQ(pattern.numMessages(), tr.numSends());
}

TEST_P(GeneratorSweep, DeterministicForSeed)
{
    const auto a = make();
    const auto b = make();
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, GeneratorSweep,
    ::testing::Combine(::testing::Values(Benchmark::BT, Benchmark::CG,
                                         Benchmark::FFT, Benchmark::MG,
                                         Benchmark::SP),
                       ::testing::Bool()),
    [](const auto &info) {
        return benchmarkName(std::get<0>(info.param)) +
               std::string(std::get<1>(info.param) ? "_large" : "_small");
    });

TEST(GeneratorCG, XorPartnersWithinRows)
{
    NasConfig cfg;
    cfg.ranks = 16;
    cfg.iterations = 1;
    const auto tr = generateCG(cfg);
    // Reduce phases exchange with column-XOR partners within rows of 4.
    for (core::ProcId r = 0; r < 16; ++r) {
        std::set<core::ProcId> peers;
        for (const auto &op : tr.timeline(r)) {
            if (op.kind == OpKind::Send)
                peers.insert(op.peer);
        }
        const std::uint32_t row = r / 4;
        const std::uint32_t col = r % 4;
        EXPECT_TRUE(peers.count(row * 4 + (col ^ 1)));
        EXPECT_TRUE(peers.count(row * 4 + (col ^ 2)));
        if (row != col)
            EXPECT_TRUE(peers.count(col * 4 + row)); // transpose
        else
            EXPECT_EQ(peers.size(), 2u); // diagonal: reduce only
    }
}

TEST(GeneratorCG, RejectsNonPowerOfTwo)
{
    NasConfig cfg;
    cfg.ranks = 12;
    EXPECT_EXIT(generateCG(cfg), ::testing::ExitedWithCode(1),
                "power-of-two");
}

TEST(GeneratorAdi, RejectsNonSquare)
{
    NasConfig cfg;
    cfg.ranks = 8;
    EXPECT_EXIT(generateBT(cfg), ::testing::ExitedWithCode(1), "square");
    EXPECT_EXIT(generateSP(cfg), ::testing::ExitedWithCode(1), "square");
}

TEST(GeneratorAdi, SweepPartnersAreGridShifts)
{
    NasConfig cfg;
    cfg.ranks = 9;
    cfg.iterations = 1;
    const auto tr = generateBT(cfg);
    // Rank 4 (center of the 3x3 grid) sends along +-x, +-y and the two
    // diagonals.
    std::set<core::ProcId> peers;
    for (const auto &op : tr.timeline(4)) {
        if (op.kind == OpKind::Send)
            peers.insert(op.peer);
    }
    EXPECT_EQ(peers, (std::set<core::ProcId>{0, 3, 5, 8, 1, 7}));
}

TEST(GeneratorSpVsBt, SpRunsMoreSmallerMessages)
{
    NasConfig cfg;
    cfg.ranks = 9;
    cfg.iterations = 2;
    const auto bt = generateBT(cfg);
    const auto sp = generateSP(cfg);
    EXPECT_GT(sp.numSends(), bt.numSends());
    EXPECT_LT(sp.totalSendBytes() / sp.numSends(),
              bt.totalSendBytes() / bt.numSends());
}

TEST(GeneratorFFT, AllToAllWithinRowsAndColumns)
{
    NasConfig cfg;
    cfg.ranks = 16;
    cfg.iterations = 1;
    const auto tr = generateFFT(cfg);
    for (core::ProcId r = 0; r < 16; ++r) {
        std::set<core::ProcId> peers;
        for (const auto &op : tr.timeline(r)) {
            if (op.kind == OpKind::Send)
                peers.insert(op.peer);
        }
        // 3 row mates + 3 column mates.
        EXPECT_EQ(peers.size(), 6u);
        for (const auto p : peers) {
            EXPECT_TRUE(p / 4 == r / 4 || p % 4 == r % 4)
                << r << " talks to non-mate " << p;
        }
    }
}

TEST(GeneratorMG, ShortMessagesDominate)
{
    NasConfig cfg;
    cfg.ranks = 16;
    cfg.iterations = 1;
    const auto mg = generateMG(cfg);
    const auto cg = generateCG(cfg);
    EXPECT_LT(mg.totalSendBytes() / mg.numSends(),
              cg.totalSendBytes() / cg.numSends());
}

TEST(GeneratorMG, ThreeDimensionalNeighbors)
{
    NasConfig cfg;
    cfg.ranks = 16; // 4x2x2
    cfg.iterations = 1;
    const auto tr = generateMG(cfg);
    // Rank 0 = (0,0,0): x neighbors 1 and 3, y neighbor 4, z neighbor 8,
    // plus reduce partners 1, 2, 4, 8.
    std::set<core::ProcId> peers;
    for (const auto &op : tr.timeline(0)) {
        if (op.kind == OpKind::Send)
            peers.insert(op.peer);
    }
    EXPECT_EQ(peers, (std::set<core::ProcId>{1, 2, 3, 4, 8}));
}

TEST(Generators, BytesAndComputeOverridable)
{
    NasConfig cfg;
    cfg.ranks = 8;
    cfg.iterations = 1;
    cfg.bytesScale = 64;
    cfg.computeScale = 800;
    const auto tr = generateCG(cfg);
    EXPECT_EQ(tr.totalSendBytes(), tr.numSends() * 64u);
    EXPECT_LT(tr.totalComputeCycles(), 8 * 800 * 4);
}

TEST(Generators, SkewZeroMakesComputeUniform)
{
    NasConfig cfg;
    cfg.ranks = 8;
    cfg.iterations = 1;
    cfg.skew = 0.0;
    const auto tr = generateCG(cfg);
    // With zero skew every rank gets identical compute phases.
    const auto &ref = tr.timeline(0);
    for (core::ProcId r = 1; r < 8; ++r) {
        const auto &tl = tr.timeline(r);
        std::vector<std::int64_t> a, b;
        for (const auto &op : ref)
            if (op.kind == OpKind::Compute)
                a.push_back(op.cycles);
        for (const auto &op : tl)
            if (op.kind == OpKind::Compute)
                b.push_back(op.cycles);
        EXPECT_EQ(a, b);
    }
}
