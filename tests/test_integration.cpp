/**
 * @file
 * Integration tests: the complete pipeline (trace -> analysis ->
 * methodology -> floorplan -> topology -> simulation) for every
 * benchmark, checking the paper's headline qualitative claims.
 */

#include <gtest/gtest.h>

#include "core/methodology.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;

namespace {

struct PipelineResult
{
    core::DesignOutcome outcome;
    topo::Floorplan plan;
    sim::SimResult onGenerated;
    sim::SimResult onCrossbar;
    sim::SimResult onMesh;
    std::size_t sends = 0;
};

PipelineResult
runPipeline(trace::Benchmark bench, std::uint32_t ranks)
{
    trace::NasConfig cfg;
    cfg.ranks = ranks;
    cfg.iterations = 2;
    const auto tr = trace::generateBenchmark(bench, cfg);
    const auto ks = trace::analyzeByCall(tr);

    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    PipelineResult r;
    r.sends = tr.numSends();
    r.outcome = core::runMethodology(ks, mcfg);
    r.plan = topo::planFloor(r.outcome.design);

    const auto gen = topo::buildFromDesign(r.outcome.design, r.plan);
    const auto xbar = topo::buildCrossbar(ranks);
    const auto mesh = topo::buildMesh(ranks);
    r.onGenerated = sim::runTrace(tr, *gen.topo, *gen.routing);
    r.onCrossbar = sim::runTrace(tr, *xbar.topo, *xbar.routing);
    r.onMesh = sim::runTrace(tr, *mesh.topo, *mesh.routing);
    return r;
}

} // namespace

class PipelineSweep
    : public ::testing::TestWithParam<std::tuple<trace::Benchmark, bool>>
{
};

TEST_P(PipelineSweep, EndToEndHoldsPaperShape)
{
    const auto [bench, large] = GetParam();
    const std::uint32_t ranks = large ? trace::largeConfigRanks(bench)
                                      : trace::smallConfigRanks(bench);
    const auto r = runPipeline(bench, ranks);

    // Contention-free by Theorem 1.
    EXPECT_TRUE(r.outcome.violations.empty());
    // Design constraints met.
    EXPECT_TRUE(r.outcome.constraintsMet);

    // Resource claim (Figure 7 shape): never more switches than mesh.
    // Link area beats the mesh except for the dense collectives at 16
    // nodes (FFT/MG), whose synthetic patterns are denser than the
    // paper's traces; there we only require staying within 40% of the
    // mesh (the paper itself reports FFT/MG's relative resource needs
    // growing sharply from 8 to 16 nodes). See EXPERIMENTS.md.
    const auto [meshSw, meshLk] = topo::meshAreas(ranks);
    EXPECT_LE(r.plan.switchArea, meshSw);
    const bool denseCollective =
        large && (bench == trace::Benchmark::FFT ||
                  bench == trace::Benchmark::MG);
    const double linkBudget = denseCollective ? 1.4 : 1.0;
    EXPECT_LE(r.plan.linkArea + r.plan.procLinkArea,
              static_cast<std::uint32_t>(linkBudget * meshLk));

    // All messages delivered on every network, no deadlocks anywhere
    // (the paper observed none either).
    EXPECT_EQ(r.onGenerated.packetsDelivered, r.sends);
    EXPECT_EQ(r.onCrossbar.packetsDelivered, r.sends);
    EXPECT_EQ(r.onMesh.packetsDelivered, r.sends);
    EXPECT_EQ(r.onGenerated.deadlockRecoveries, 0u);

    // Performance claim (Figure 8 shape). Paper: generated < 4% off
    // the crossbar everywhere. That holds here except the 16-node ADI
    // solvers: our synthetic BT/SP are clean cyclic shifts that a mesh
    // routes contention-free (the authors' real traces contended), so
    // their aggressively merged 62%-resource networks trade up to ~8%
    // execution time for the area win instead of winning outright —
    // the paper's own stated trade for low-contention workloads. See
    // EXPERIMENTS.md.
    const bool adiLarge =
        large && (bench == trace::Benchmark::BT ||
                  bench == trace::Benchmark::SP);
    const double xbarBudget = adiLarge ? 1.10 : 1.06;
    const double meshBudget = adiLarge ? 1.08 : 1.02;
    const double vsCrossbar =
        static_cast<double>(r.onGenerated.execTime) /
        static_cast<double>(r.onCrossbar.execTime);
    EXPECT_LT(vsCrossbar, xbarBudget)
        << trace::benchmarkName(bench) << "-" << ranks;
    EXPECT_LE(r.onGenerated.execTime,
              static_cast<sim::Cycle>(
                  meshBudget * static_cast<double>(r.onMesh.execTime)))
        << trace::benchmarkName(bench) << "-" << ranks;
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, PipelineSweep,
    ::testing::Combine(::testing::Values(trace::Benchmark::BT,
                                         trace::Benchmark::CG,
                                         trace::Benchmark::FFT,
                                         trace::Benchmark::MG,
                                         trace::Benchmark::SP),
                       ::testing::Bool()),
    [](const auto &info) {
        return trace::benchmarkName(std::get<0>(info.param)) +
               std::string(std::get<1>(info.param) ? "_large" : "_small");
    });

TEST(Pipeline, CgSixteenBeatsMeshOnCommTime)
{
    // The paper's strongest result: CG-16's generated network cuts
    // communication time substantially relative to the mesh.
    const auto r = runPipeline(trace::Benchmark::CG, 16);
    EXPECT_LT(r.onGenerated.commTimeMean(), r.onMesh.commTimeMean());
    EXPECT_LT(r.onGenerated.execTime, r.onMesh.execTime);
}

TEST(Pipeline, CrossPatternFftOnCgNetworkDegradesLittle)
{
    // Section 4.2: FFT runs fine on the CG-generated network.
    trace::NasConfig cfg;
    cfg.ranks = 16;
    cfg.iterations = 2;
    const auto cgTrace = trace::generateCG(cfg);
    const auto fftTrace = trace::generateFFT(cfg);

    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;

    const auto cgOutcome =
        core::runMethodology(trace::analyzeByCall(cgTrace), mcfg);
    const auto fftOutcome =
        core::runMethodology(trace::analyzeByCall(fftTrace), mcfg);

    const auto cgPlan = topo::planFloor(cgOutcome.design);
    const auto fftPlan = topo::planFloor(fftOutcome.design);
    const auto cgNet = topo::buildFromDesign(cgOutcome.design, cgPlan);
    const auto fftNet = topo::buildFromDesign(fftOutcome.design, fftPlan);

    const auto native =
        sim::runTrace(fftTrace, *fftNet.topo, *fftNet.routing);
    const auto transplanted =
        sim::runTrace(fftTrace, *cgNet.topo, *cgNet.routing);

    EXPECT_EQ(transplanted.packetsDelivered, fftTrace.numSends());
    // Foreign pattern: some degradation is expected but bounded (the
    // paper reports <2% for FFT-on-CG; allow generous slack for our
    // synthetic traces).
    const double ratio = static_cast<double>(transplanted.execTime) /
                         static_cast<double>(native.execTime);
    EXPECT_LT(ratio, 1.5);
}

TEST(Pipeline, GeneratedNetworkHandlesUnknownPairs)
{
    // Send traffic the design never saw: uniform all-to-all on the
    // CG-generated network must still deliver (BFS fallback paths).
    trace::NasConfig cfg;
    cfg.ranks = 8;
    cfg.iterations = 1;
    const auto cgTrace = trace::generateCG(cfg);
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    const auto outcome =
        core::runMethodology(trace::analyzeByCall(cgTrace), mcfg);
    const auto plan = topo::planFloor(outcome.design);
    const auto net = topo::buildFromDesign(outcome.design, plan);

    trace::Trace all("alltoall", 8);
    std::uint32_t call = 0;
    for (core::ProcId s = 0; s < 8; ++s) {
        for (core::ProcId d = 0; d < 8; ++d) {
            if (s == d)
                continue;
            all.push(s, trace::TraceOp::send(d, 256, call));
            all.push(d, trace::TraceOp::recv(s, 256, call));
            ++call;
        }
    }
    const auto res = sim::runTrace(all, *net.topo, *net.routing);
    EXPECT_EQ(res.packetsDelivered, 56u);
}
