/**
 * @file
 * Unit tests for the design-time network, including a faithful replay
 * of the paper's Cut 1 / Cut 2 example (Figures 1, 2 and 5a-b): the
 * same CG-16 clique set, the same processor moves, the same Fast_Color
 * link estimates (4, then 3, then 2).
 */

#include <gtest/gtest.h>

#include "core/design_network.hpp"
#include "util/rng.hpp"

using namespace minnoc::core;
using minnoc::Rng;

namespace {

/**
 * The CG-16 communication clique set of the paper's Figure 1
 * (0-based ranks, rank = row * 4 + col on the 4x4 process grid):
 * two reduce-exchange periods (column XOR 1, column XOR 2) and the
 * matrix-transpose period with a silent diagonal.
 */
CliqueSet
figure1Cliques()
{
    CliqueSet ks(16);
    auto rankAt = [](std::uint32_t row, std::uint32_t col) {
        return static_cast<ProcId>(row * 4 + col);
    };
    for (const std::uint32_t bit : {1u, 2u}) {
        std::vector<Comm> comms;
        for (std::uint32_t row = 0; row < 4; ++row) {
            for (std::uint32_t col = 0; col < 4; ++col)
                comms.emplace_back(rankAt(row, col),
                                   rankAt(row, col ^ bit));
        }
        ks.addClique(comms);
    }
    std::vector<Comm> transpose;
    for (std::uint32_t row = 0; row < 4; ++row) {
        for (std::uint32_t col = 0; col < 4; ++col) {
            if (row != col)
                transpose.emplace_back(rankAt(row, col),
                                       rankAt(col, row));
        }
    }
    ks.addClique(transpose);
    return ks;
}

} // namespace

TEST(DesignNetwork, MegaswitchInitialState)
{
    CliqueSet ks = figure1Cliques();
    DesignNetwork net(ks);
    EXPECT_EQ(net.numSwitches(), 1u);
    EXPECT_EQ(net.numProcs(), 16u);
    EXPECT_EQ(net.procsOf(0).size(), 16u);
    EXPECT_TRUE(net.pipes().empty());
    EXPECT_EQ(net.totalEstimatedLinks(), 0u);
    EXPECT_EQ(net.estimatedDegree(0), 16u);
    for (CommId c = 0; c < ks.numComms(); ++c)
        EXPECT_EQ(net.route(c), std::vector<SwitchId>{0});
    net.checkInvariants();
}

TEST(DesignNetwork, PaperCut1NeedsFourLinks)
{
    CliqueSet ks = figure1Cliques();
    DesignNetwork net(ks);
    Rng rng(1);
    const SwitchId sj = net.splitSwitch(0, rng);

    // Force the paper's Cut 1: processors 0-7 on S0, 8-15 on S1.
    for (ProcId p = 0; p < 8; ++p)
        net.moveProc(p, 0);
    for (ProcId p = 8; p < 16; ++p)
        net.moveProc(p, sj);
    net.checkInvariants();

    const PipeKey cut(0, sj);
    const Pipe &pipe = net.pipe(cut);
    // Eight transpose messages cross the cut, four per direction.
    EXPECT_EQ(pipe.fwd.size(), 4u);
    EXPECT_EQ(pipe.bwd.size(), 4u);
    EXPECT_EQ(net.fastColor(cut), 4u);
}

TEST(DesignNetwork, PaperCut2NeedsThreeLinks)
{
    CliqueSet ks = figure1Cliques();
    DesignNetwork net(ks);
    Rng rng(1);
    const SwitchId sj = net.splitSwitch(0, rng);
    for (ProcId p = 0; p < 8; ++p)
        net.moveProc(p, 0);
    for (ProcId p = 8; p < 16; ++p)
        net.moveProc(p, sj);

    // The paper moves node 9 (0-based processor 8) across: now five
    // communications go forward but at most three share a period.
    net.moveProc(8, 0);
    net.checkInvariants();

    const PipeKey cut(0, sj);
    const Pipe &pipe = net.pipe(cut);
    EXPECT_EQ(pipe.fwd.size(), 5u);
    EXPECT_EQ(pipe.bwd.size(), 5u);
    EXPECT_EQ(net.fastColor(cut), 3u);
}

TEST(DesignNetwork, PaperSecondMoveNeedsTwoLinks)
{
    CliqueSet ks = figure1Cliques();
    DesignNetwork net(ks);
    Rng rng(1);
    const SwitchId sj = net.splitSwitch(0, rng);
    for (ProcId p = 0; p < 8; ++p)
        net.moveProc(p, 0);
    for (ProcId p = 8; p < 16; ++p)
        net.moveProc(p, sj);
    net.moveProc(8, 0);
    // Figure 5(b): processor 8 of the paper (0-based 7) moves the other
    // way; the estimate drops to two links.
    net.moveProc(7, sj);
    net.checkInvariants();

    EXPECT_EQ(net.fastColor(PipeKey(0, sj)), 2u);
}

TEST(DesignNetwork, SplitMovesRoughlyHalf)
{
    CliqueSet ks = figure1Cliques();
    DesignNetwork net(ks);
    Rng rng(3);
    const SwitchId sj = net.splitSwitch(0, rng);
    EXPECT_EQ(net.procsOf(0).size(), 8u);
    EXPECT_EQ(net.procsOf(sj).size(), 8u);
    net.checkInvariants();
}

TEST(DesignNetwork, IntraSwitchCommNeedsNoPipe)
{
    CliqueSet ks(4);
    ks.addClique({Comm(0, 1)});
    DesignNetwork net(ks);
    EXPECT_TRUE(net.pipes().empty());
    EXPECT_EQ(net.route(0), std::vector<SwitchId>{0});
}

TEST(DesignNetwork, MoveRestoresExactlyOnRoundTrip)
{
    CliqueSet ks = figure1Cliques();
    DesignNetwork net(ks);
    Rng rng(7);
    const SwitchId sj = net.splitSwitch(0, rng);

    const auto linksBefore = net.totalEstimatedLinks();
    const auto pipesBefore = net.pipes();
    const ProcId victim = net.procsOf(0).front();
    net.moveProc(victim, sj);
    net.moveProc(victim, 0);
    EXPECT_EQ(net.totalEstimatedLinks(), linksBefore);
    EXPECT_EQ(net.pipes(), pipesBefore);
    net.checkInvariants();
}

TEST(DesignNetwork, SetRouteUpdatesPipes)
{
    CliqueSet ks(6);
    ks.addClique({Comm(0, 5)});
    DesignNetwork net(ks);
    Rng rng(1);
    // Split twice to get three switches.
    const SwitchId s1 = net.splitSwitch(0, rng);
    const SwitchId s2 = net.splitSwitch(0, rng);

    const CommId c = ks.findComm(Comm(0, 5));
    ASSERT_NE(c, CliqueSet::kNoComm);
    const SwitchId from = net.homeOf(0);
    const SwitchId to = net.homeOf(5);
    if (from != to) {
        // Detour through the third switch.
        SwitchId mid = 0;
        for (const SwitchId s : {SwitchId(0), s1, s2}) {
            if (s != from && s != to)
                mid = s;
        }
        net.setRoute(c, {from, mid, to});
        EXPECT_EQ(net.route(c),
                  (std::vector<SwitchId>{from, mid, to}));
        EXPECT_EQ(net.pipe(PipeKey(from, to)).fwd.size() +
                      net.pipe(PipeKey(from, to)).bwd.size(),
                  0u);
        net.checkInvariants();
    }
}

TEST(DesignNetwork, SetRouteRejectsBadAnchors)
{
    CliqueSet ks(4);
    ks.addClique({Comm(0, 3)});
    DesignNetwork net(ks);
    Rng rng(1);
    net.splitSwitch(0, rng);
    const CommId c = ks.findComm(Comm(0, 3));
    EXPECT_DEATH(net.setRoute(c, {99}), "endpoints");
}

TEST(DesignNetwork, SplitSingleProcSwitchPanics)
{
    CliqueSet ks(2);
    ks.addClique({Comm(0, 1)});
    DesignNetwork net(ks);
    Rng rng(1);
    net.splitSwitch(0, rng); // 1 proc each now
    EXPECT_DEATH(net.splitSwitch(0, rng), "fewer than two");
}

TEST(DesignNetwork, FastColorEmptyPipeZero)
{
    CliqueSet ks = figure1Cliques();
    DesignNetwork net(ks);
    EXPECT_EQ(net.fastColor(PipeKey(5, 9)), 0u);
}

TEST(DesignNetwork, EstimatedDegreeCountsProcsAndLinks)
{
    CliqueSet ks = figure1Cliques();
    DesignNetwork net(ks);
    Rng rng(1);
    const SwitchId sj = net.splitSwitch(0, rng);
    for (ProcId p = 0; p < 8; ++p)
        net.moveProc(p, 0);
    for (ProcId p = 8; p < 16; ++p)
        net.moveProc(p, sj);
    EXPECT_EQ(net.estimatedDegree(0), 8u + 4u);
    EXPECT_EQ(net.estimatedDegree(sj), 8u + 4u);
}
