/**
 * @file
 * Simulator robustness across configuration extremes: single virtual
 * channel, minimal buffers, deep buffers, and oversized flits. The
 * microarchitecture must deliver everything correctly in all of them;
 * only the timing may differ.
 */

#include <gtest/gtest.h>

#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::sim;

namespace {

trace::Trace
cgTrace(std::uint32_t ranks)
{
    trace::NasConfig cfg;
    cfg.ranks = ranks;
    cfg.iterations = 1;
    return trace::generateCG(cfg);
}

} // namespace

/** (numVcs, vcDepth) sweep. */
class SimConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(SimConfigSweep, MeshDeliversEverything)
{
    const auto [vcs, depth] = GetParam();
    SimConfig cfg;
    cfg.numVcs = static_cast<std::uint32_t>(vcs);
    cfg.vcDepth = static_cast<std::uint32_t>(depth);
    const auto tr = cgTrace(8);
    const auto mesh = topo::buildMesh(8);
    const auto res = runTrace(tr, *mesh.topo, *mesh.routing, cfg);
    EXPECT_EQ(res.packetsDelivered, tr.numSends());
    // DOR on a mesh is deadlock-free even with one VC.
    EXPECT_EQ(res.deadlockRecoveries, 0u);
}

INSTANTIATE_TEST_SUITE_P(Extremes, SimConfigSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3,
                                                              8),
                                            ::testing::Values(1, 4,
                                                              16)));

TEST(SimConfigs, MoreVcsNeverSlowerOnConflictingTraffic)
{
    // Two long wormholes forced through one mesh link: with one VC the
    // second fully waits; with several they interleave. Either way the
    // link serializes, but head-of-line blocking cannot make more VCs
    // slower.
    trace::Trace t("conflict", 4); // 4-proc mesh is 2x2
    t.push(0, trace::TraceOp::send(3, 4000, 0));
    t.push(1, trace::TraceOp::send(3, 4000, 1));
    t.push(3, trace::TraceOp::recv(0, 4000, 0));
    t.push(3, trace::TraceOp::recv(1, 4000, 1));
    const auto mesh = topo::buildMesh(4);

    SimConfig one;
    one.numVcs = 1;
    SimConfig three;
    three.numVcs = 3;
    const auto r1 = runTrace(t, *mesh.topo, *mesh.routing, one);
    const auto r3 = runTrace(t, *mesh.topo, *mesh.routing, three);
    EXPECT_EQ(r1.packetsDelivered, 2u);
    EXPECT_EQ(r3.packetsDelivered, 2u);
    EXPECT_LE(r3.execTime, r1.execTime + 8);
}

TEST(SimConfigs, LargeFlitsShortenSerialization)
{
    SimConfig narrow; // 4-byte flits (default)
    SimConfig wide;
    wide.flitBytes = 16;
    trace::Trace t("wide", 2);
    t.push(0, trace::TraceOp::send(1, 4096, 0));
    t.push(1, trace::TraceOp::recv(0, 4096, 0));
    const auto xbar = topo::buildCrossbar(2);
    const auto rn = runTrace(t, *xbar.topo, *xbar.routing, narrow);
    const auto rw = runTrace(t, *xbar.topo, *xbar.routing, wide);
    // 4x wider flits: roughly 4x fewer flits, much faster transfer.
    EXPECT_LT(rw.execTime * 3, rn.execTime);
}

TEST(SimConfigs, OverheadsShiftCommTimeLinearly)
{
    SimConfig cheap;
    cheap.sendOverhead = 0;
    cheap.recvOverhead = 0;
    SimConfig costly;
    costly.sendOverhead = 100;
    costly.recvOverhead = 100;
    trace::Trace t("oh", 2);
    t.push(0, trace::TraceOp::send(1, 4, 0));
    t.push(1, trace::TraceOp::recv(0, 4, 0));
    const auto xbar = topo::buildCrossbar(2);
    const auto rc = runTrace(t, *xbar.topo, *xbar.routing, cheap);
    const auto re = runTrace(t, *xbar.topo, *xbar.routing, costly);
    // Receiver pays recv overhead; sender pays send overhead before
    // injection, which also delays delivery.
    EXPECT_GE(re.execTime - rc.execTime, 190);
    EXPECT_LE(re.execTime - rc.execTime, 210);
}

TEST(SimConfigs, BenchmarkOnSingleVcTorusRecoversIfNeeded)
{
    // TFAR + 1 VC + tiny buffers is the adversarial configuration; the
    // run must complete regardless, recovery or not.
    SimConfig cfg;
    cfg.numVcs = 1;
    cfg.vcDepth = 1;
    cfg.deadlockTimeout = 2000;
    cfg.deadlockScanInterval = 128;
    const auto tr = cgTrace(8);
    const auto torus = topo::buildTorus(8);
    const auto res = runTrace(tr, *torus.topo, *torus.routing, cfg);
    EXPECT_EQ(res.packetsDelivered, tr.numSends());
}
