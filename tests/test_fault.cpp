/**
 * @file
 * Unit tests for fault injection: deterministic seeding, disconnection
 * detection, bounded corruption retries, fault-aware rerouting, and
 * graceful degradation of the trace driver.
 */

#include <gtest/gtest.h>

#include "sim/fault.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "trace/trace.hpp"

using namespace minnoc;
using namespace minnoc::sim;

namespace {

/** Step the network until idle or the cycle budget runs out. */
Cycle
runUntilIdle(Network &net, Cycle start = 0, Cycle budget = 200000)
{
    Cycle now = start;
    while (!net.idle() && now < start + budget)
        net.step(++now);
    EXPECT_TRUE(net.idle()) << "network failed to drain";
    return now;
}

/** First inter-switch link of @p topo (panics if none). */
topo::LinkId
firstSwitchLink(const topo::Topology &topo)
{
    for (topo::LinkId l = 0; l < topo.numLinks(); ++l) {
        if (!topo.isProc(topo.link(l).from) &&
            !topo.isProc(topo.link(l).to)) {
            return l;
        }
    }
    ADD_FAILURE() << "topology has no inter-switch link";
    return topo::kNoLink;
}

/** A two-rank trace: 0 sends one message, 1 receives it. */
trace::Trace
oneMessageTrace(std::uint32_t ranks, core::ProcId src, core::ProcId dst,
                std::uint64_t bytes)
{
    trace::Trace t("one-message", ranks);
    t.push(src, trace::TraceOp::send(dst, bytes, 0));
    t.push(dst, trace::TraceOp::recv(src, bytes, 0));
    return t;
}

} // namespace

TEST(FaultModel, RandomSelectionIsDeterministic)
{
    const auto built = topo::buildMesh(16);
    FaultConfig cfg;
    cfg.randomFailLinks = 3;
    cfg.seed = 42;
    const FaultModel a(*built.topo, cfg);
    const FaultModel b(*built.topo, cfg);
    EXPECT_EQ(a.failedLinks(), b.failedLinks());
    EXPECT_EQ(a.failedLinks().size(), 3u);

    cfg.seed = 43;
    const FaultModel c(*built.topo, cfg);
    EXPECT_NE(a.failedLinks(), c.failedLinks());
}

TEST(FaultModel, RandomSelectionPrefersInterSwitchLinks)
{
    const auto built = topo::buildMesh(16);
    FaultConfig cfg;
    cfg.randomFailLinks = 5;
    cfg.seed = 9;
    const FaultModel m(*built.topo, cfg);
    for (const auto l : m.failedLinks()) {
        EXPECT_FALSE(built.topo->isProc(built.topo->link(l).from));
        EXPECT_FALSE(built.topo->isProc(built.topo->link(l).to));
    }
}

TEST(FaultModel, BackoffGrowsAndCaps)
{
    FaultConfig cfg;
    cfg.backoffBase = 64;
    cfg.backoffCap = 1000;
    const auto built = topo::buildCrossbar(2);
    FaultModel m(*built.topo, cfg);
    EXPECT_EQ(m.backoff(0), 64);
    EXPECT_EQ(m.backoff(1), 128);
    EXPECT_EQ(m.backoff(2), 256);
    EXPECT_EQ(m.backoff(10), 1000); // capped
    EXPECT_EQ(m.backoff(63), 1000); // shift clamp: no UB, still capped
}

TEST(FaultRerouting, SingleMeshLinkFailureKeepsAllPairsConnected)
{
    const auto built = topo::buildMesh(16);
    const auto failed = firstSwitchLink(*built.topo);
    std::vector<bool> mask(built.topo->numLinks(), false);
    mask[failed] = true;

    const auto degraded = rerouteAroundFaults(*built.topo, mask);
    EXPECT_TRUE(degraded.disconnected.empty());
    ASSERT_NE(degraded.routing, nullptr);
    // Every pair has a path, no path crosses the failed link, and the
    // table is walkable end to end.
    topo::validateRouting(*built.topo, *degraded.routing);
    for (core::ProcId s = 0; s < 16; ++s) {
        for (core::ProcId d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            ASSERT_TRUE(degraded.routing->hasPath(s, d));
            for (const auto l : degraded.routing->path(s, d))
                EXPECT_NE(l, failed);
        }
    }
}

TEST(FaultRerouting, EjectionLinkFailureDisconnectsExactlyOneColumn)
{
    const auto built = topo::buildMesh(16);
    std::vector<bool> mask(built.topo->numLinks(), false);
    mask[built.topo->ejectionLink(5)] = true;

    const auto degraded = rerouteAroundFaults(*built.topo, mask);
    // Nobody can reach proc 5; everything else still works.
    EXPECT_EQ(degraded.disconnected.size(), 15u);
    for (const auto &[s, d] : degraded.disconnected)
        EXPECT_EQ(d, 5u);
}

TEST(FaultNetwork, TransientCorruptionRetransmitsAndDelivers)
{
    const auto built = topo::buildMesh(16);
    FaultConfig fcfg;
    // Low enough that even 8-traversal corner paths get a clean attempt
    // within the retry budget, high enough that 16 packets see several
    // corruption events under this seed.
    fcfg.flitErrorRate = 0.05;
    fcfg.maxRetransmits = 16;
    fcfg.seed = 11;
    Network net(*built.topo, *built.routing, SimConfig{},
                FaultModel(*built.topo, fcfg));
    for (core::ProcId p = 0; p < 16; ++p)
        net.enqueue(p, static_cast<core::ProcId>(15 - p), 256, 0, 0);
    runUntilIdle(net);
    EXPECT_EQ(net.stats().packetsDelivered, 16u);
    EXPECT_GT(net.stats().retransmissions, 0u);
    EXPECT_GT(net.stats().corruptedFlits, 0u);
    EXPECT_EQ(net.stats().packetsDropped, 0u);
    EXPECT_GT(net.stats().latencyInflation(), 1.0);
}

TEST(FaultNetwork, RetryBudgetExhaustionDropsPacket)
{
    const auto built = topo::buildCrossbar(4);
    FaultConfig fcfg;
    fcfg.flitErrorRate = 1.0; // every traversal corrupts
    fcfg.maxRetransmits = 2;
    Network net(*built.topo, *built.routing, SimConfig{},
                FaultModel(*built.topo, fcfg));
    const auto id = net.enqueue(0, 1, 64, 0, 0);
    runUntilIdle(net);
    EXPECT_TRUE(net.packet(id).dropped);
    EXPECT_EQ(net.stats().packetsDelivered, 0u);
    EXPECT_EQ(net.stats().packetsDropped, 1u);
    EXPECT_EQ(net.stats().retryExhaustions, 1u);
    EXPECT_EQ(net.stats().retransmissions, 2u);
    // The receiver is told the message is lost rather than left waiting.
    EXPECT_FALSE(net.hasDelivered(1, 0));
    EXPECT_TRUE(net.nextDeliveryLost(1, 0));
    net.skipLostDelivery(1, 0);
    EXPECT_FALSE(net.nextDeliveryLost(1, 0));
}

TEST(FaultNetwork, FailedFromStartDisconnectsChannel)
{
    const auto built = topo::buildMesh(16);
    FaultConfig fcfg;
    fcfg.failLinks = {built.topo->injectionLink(3)};
    Network net(*built.topo, *built.routing, SimConfig{},
                FaultModel(*built.topo, fcfg));
    EXPECT_TRUE(net.channelDisconnected(3, 7));
    EXPECT_FALSE(net.channelDisconnected(7, 3));
    const auto dead = net.enqueue(3, 7, 64, 0, 0);
    const auto live = net.enqueue(7, 3, 64, 0, 0);
    runUntilIdle(net);
    EXPECT_TRUE(net.packet(dead).dropped);
    EXPECT_TRUE(net.packet(live).delivered());
    EXPECT_TRUE(net.injected(dead)) << "sender must not block on a drop";
    EXPECT_EQ(net.stats().disconnectedPairs, 15u);
    EXPECT_LT(net.stats().deliveredFraction(), 1.0);
}

TEST(FaultNetwork, MidRunFailureReroutesInFlightTraffic)
{
    const auto built = topo::buildMesh(16);
    const auto failed = firstSwitchLink(*built.topo);
    FaultConfig fcfg;
    fcfg.failLinks = {failed};
    fcfg.failAtCycle = 20;
    Network net(*built.topo, *built.routing, SimConfig{},
                FaultModel(*built.topo, fcfg));
    // Long corner-to-corner packets certain to be in flight at cycle 20.
    net.enqueue(0, 15, 2048, 0, 0);
    net.enqueue(15, 0, 2048, 0, 0);
    EXPECT_EQ(net.stats().failedLinks, 0u);
    runUntilIdle(net);
    EXPECT_EQ(net.stats().failedLinks, 1u);
    EXPECT_EQ(net.stats().packetsDelivered, 2u);
    EXPECT_EQ(net.stats().packetsDropped, 0u);
    // The activation purge retransmits whatever was in the network.
    EXPECT_GT(net.stats().retransmissions, 0u);
}

TEST(FaultNetwork, SameSeedReproducesIdenticalStats)
{
    const auto built = topo::buildMesh(16);
    FaultConfig fcfg;
    fcfg.randomFailLinks = 2;
    fcfg.flitErrorRate = 0.2;
    fcfg.seed = 77;
    auto run = [&]() {
        Network net(*built.topo, *built.routing, SimConfig{},
                    FaultModel(*built.topo, fcfg));
        for (core::ProcId p = 0; p < 16; ++p)
            net.enqueue(p, static_cast<core::ProcId>((p + 3) % 16), 192,
                        0, 0);
        runUntilIdle(net);
        return net.stats();
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.packetsDelivered, b.packetsDelivered);
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.corruptedFlits, b.corruptedFlits);
    EXPECT_EQ(a.packetsDropped, b.packetsDropped);
    EXPECT_EQ(a.packetLatency.mean(), b.packetLatency.mean());
    EXPECT_EQ(a.linkFlits, b.linkFlits);
}

TEST(FaultTraceDriver, LostMessageSkipsRecvInsteadOfHanging)
{
    const auto built = topo::buildMesh(4);
    const auto tr = oneMessageTrace(4, 0, 1, 256);
    FaultConfig fcfg;
    fcfg.failLinks = {built.topo->injectionLink(0)};
    const auto res = sim::runTrace(tr, *built.topo, *built.routing,
                                   SimConfig{}, fcfg);
    EXPECT_EQ(res.recvsLost, 1u);
    EXPECT_EQ(res.packetsDropped, 1u);
    EXPECT_LT(res.deliveredFraction, 1.0);
    ASSERT_EQ(res.undeliverableChannels.size(), 1u);
    EXPECT_EQ(res.undeliverableChannels[0].first, 0u);
    EXPECT_EQ(res.undeliverableChannels[0].second, 1u);
}

TEST(FaultTraceDriver, CleanNetworkReportsFullDelivery)
{
    const auto built = topo::buildMesh(4);
    const auto tr = oneMessageTrace(4, 2, 3, 256);
    const auto res = sim::runTrace(tr, *built.topo, *built.routing,
                                   SimConfig{}, FaultConfig{});
    EXPECT_EQ(res.recvsLost, 0u);
    EXPECT_EQ(res.deliveredFraction, 1.0);
    EXPECT_EQ(res.latencyInflation, 1.0);
    EXPECT_TRUE(res.undeliverableChannels.empty());
}

TEST(FaultModel, RejectsBadConfig)
{
    const auto built = topo::buildCrossbar(4);
    FaultConfig bad;
    bad.flitErrorRate = 1.5;
    EXPECT_DEATH(FaultModel(*built.topo, bad), "flit error rate");
    FaultConfig badLink;
    badLink.failLinks = {static_cast<topo::LinkId>(10000)};
    EXPECT_DEATH(FaultModel(*built.topo, badLink), "link");
}
