/**
 * @file
 * Unit tests for SCC / BFS connectivity algorithms.
 */

#include <gtest/gtest.h>

#include <set>

#include "graph/connectivity.hpp"

using namespace minnoc::graph;

namespace {

Digraph
directedCycle(std::size_t n)
{
    Digraph g(n);
    for (NodeId v = 0; v < n; ++v)
        g.addEdge(v, (v + 1) % n);
    return g;
}

} // namespace

TEST(Scc, SingleNodeNoEdges)
{
    Digraph g(1);
    EXPECT_EQ(numScc(g), 1u);
    EXPECT_TRUE(isStronglyConnected(g));
}

TEST(Scc, EmptyGraphNotStronglyConnected)
{
    Digraph g;
    EXPECT_FALSE(isStronglyConnected(g));
}

TEST(Scc, DirectedCycleIsOneComponent)
{
    const auto g = directedCycle(6);
    EXPECT_EQ(numScc(g), 1u);
    EXPECT_TRUE(isStronglyConnected(g));
}

TEST(Scc, ChainIsAllSingletons)
{
    Digraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    EXPECT_EQ(numScc(g), 4u);
    EXPECT_FALSE(isStronglyConnected(g));
}

TEST(Scc, TwoCyclesJoinedOneWay)
{
    // cycle {0,1,2} -> cycle {3,4}; two components.
    Digraph g(5);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    g.addEdge(3, 4);
    g.addEdge(4, 3);
    g.addEdge(2, 3);
    const auto comp = stronglyConnectedComponents(g);
    EXPECT_EQ(numScc(g), 2u);
    EXPECT_EQ(comp[0], comp[1]);
    EXPECT_EQ(comp[1], comp[2]);
    EXPECT_EQ(comp[3], comp[4]);
    EXPECT_NE(comp[0], comp[3]);
}

TEST(Scc, ComponentsInReverseTopologicalOrder)
{
    Digraph g(2);
    g.addEdge(0, 1);
    const auto comp = stronglyConnectedComponents(g);
    // Tarjan emits the sink component first.
    EXPECT_LT(comp[1], comp[0]);
}

TEST(Bfs, ShortestPathTrivial)
{
    Digraph g(2);
    g.addEdge(0, 1);
    EXPECT_TRUE(shortestPathEdges(g, 0, 0).empty());
}

TEST(Bfs, ShortestPathFollowsEdges)
{
    Digraph g(4);
    const EdgeId e01 = g.addEdge(0, 1);
    const EdgeId e12 = g.addEdge(1, 2);
    g.addEdge(0, 3);
    g.addEdge(3, 2); // alternative same-length path
    const auto path = shortestPathEdges(g, 0, 2);
    ASSERT_EQ(path.size(), 2u);
    // Either two-hop route is acceptable; verify continuity.
    EXPECT_EQ(g.edge(path[0]).src, 0u);
    EXPECT_EQ(g.edge(path[1]).dst, 2u);
    EXPECT_EQ(g.edge(path[0]).dst, g.edge(path[1]).src);
    (void)e01;
    (void)e12;
}

TEST(Bfs, UnreachableSentinel)
{
    Digraph g(3);
    g.addEdge(0, 1);
    const auto path = shortestPathEdges(g, 0, 2);
    ASSERT_EQ(path.size(), 1u);
    EXPECT_EQ(path[0], kNoEdge);
}

TEST(Bfs, DistancesAndUnreachable)
{
    Digraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    const auto dist = bfsDistances(g, 0);
    EXPECT_EQ(dist[0], 0);
    EXPECT_EQ(dist[1], 1);
    EXPECT_EQ(dist[2], 2);
    EXPECT_EQ(dist[3], -1);
}

TEST(Bfs, RespectsDirection)
{
    Digraph g(2);
    g.addEdge(0, 1);
    EXPECT_EQ(bfsDistances(g, 1)[0], -1);
}

TEST(Diameter, CycleDiameter)
{
    const auto g = directedCycle(5);
    EXPECT_EQ(diameter(g), 4);
}

TEST(Diameter, EmptyGraph)
{
    Digraph g;
    EXPECT_EQ(diameter(g), -1);
}

TEST(AverageDistance, CompleteBidirectionalPair)
{
    Digraph g(2);
    g.addEdge(0, 1);
    g.addEdge(1, 0);
    EXPECT_DOUBLE_EQ(averageDistance(g), 1.0);
}

TEST(AverageDistance, DirectedCycleAverage)
{
    // In a directed n-cycle the distances from any node are 1..n-1.
    const auto g = directedCycle(4);
    EXPECT_DOUBLE_EQ(averageDistance(g), (1.0 + 2.0 + 3.0) / 3.0);
}
