/**
 * @file
 * Unit tests for the shared CLI flag parser, with emphasis on the
 * hardened numeric conversions: garbage, signs, empty strings and
 * overflow must die with a one-line fatal() instead of throwing or
 * silently wrapping around.
 */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/cli.hpp"

using namespace minnoc;
using cli::Args;

namespace {

/** Build an Args from a brace list, argv[0] included for realism. */
Args
parseArgs(std::vector<const char *> argv,
          const std::vector<std::string> &allowed)
{
    argv.insert(argv.begin(), "minnoc-test");
    return Args::parse(static_cast<int>(argv.size()),
                       const_cast<char **>(argv.data()), 1, allowed);
}

} // namespace

TEST(Cli, ParsesBothFlagForms)
{
    const auto args = parseArgs(
        {"trace.txt", "--threads", "4", "--seed=9"}, {"threads", "seed"});
    ASSERT_EQ(args.positional.size(), 1u);
    EXPECT_EQ(args.positional[0], "trace.txt");
    EXPECT_EQ(args.getU32("threads", 0), 4u);
    EXPECT_EQ(args.getU64("seed", 0), 9u);
    EXPECT_TRUE(args.has("seed"));
    EXPECT_FALSE(args.has("restarts"));
}

TEST(Cli, DefaultsWhenFlagAbsent)
{
    const auto args = parseArgs({}, {"threads"});
    EXPECT_EQ(args.getU32("threads", 7), 7u);
    EXPECT_DOUBLE_EQ(args.getDouble("rate", 0.5), 0.5);
    EXPECT_EQ(args.get("out", "x"), "x");
}

TEST(Cli, RejectsUnknownFlag)
{
    EXPECT_EXIT(parseArgs({"--bogus", "1"}, {"threads"}),
                ::testing::ExitedWithCode(1), "unknown flag --bogus");
}

TEST(Cli, RejectsRepeatedFlag)
{
    // "--seed 1 --seed 2" used to silently keep the last value; it
    // must be a one-line error instead.
    EXPECT_EXIT(parseArgs({"--seed", "1", "--seed", "2"}, {"seed"}),
                ::testing::ExitedWithCode(1),
                "flag --seed given more than once");
}

TEST(Cli, RejectsRepeatedFlagAcrossBothForms)
{
    EXPECT_EXIT(parseArgs({"--seed=1", "--seed", "2"}, {"seed"}),
                ::testing::ExitedWithCode(1),
                "flag --seed given more than once");
}

TEST(Cli, RejectsMissingValue)
{
    EXPECT_EXIT(parseArgs({"--threads"}, {"threads"}),
                ::testing::ExitedWithCode(1), "needs a value");
}

TEST(Cli, RejectsGarbageInteger)
{
    const auto args = parseArgs({"--threads", "12abc"}, {"threads"});
    EXPECT_EXIT(args.getU32("threads", 0), ::testing::ExitedWithCode(1),
                "not an unsigned integer");
}

TEST(Cli, RejectsNegativeInteger)
{
    // strtoull would silently wrap "-3" to a huge value; we must not.
    const auto args = parseArgs({"--restarts", "-3"}, {"restarts"});
    EXPECT_EXIT(args.getU32("restarts", 0),
                ::testing::ExitedWithCode(1),
                "not an unsigned integer");
}

TEST(Cli, RejectsEmptyInteger)
{
    const auto args = parseArgs({"--seed="}, {"seed"});
    EXPECT_EXIT(args.getU64("seed", 0), ::testing::ExitedWithCode(1),
                "not an unsigned integer");
}

TEST(Cli, RejectsLeadingWhitespaceInteger)
{
    const auto args = parseArgs({"--seed", " 5"}, {"seed"});
    EXPECT_EXIT(args.getU64("seed", 0), ::testing::ExitedWithCode(1),
                "not an unsigned integer");
}

TEST(Cli, RejectsU64Overflow)
{
    const auto args =
        parseArgs({"--seed", "99999999999999999999"}, {"seed"});
    EXPECT_EXIT(args.getU64("seed", 0), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(Cli, RejectsU32Overflow)
{
    // Fits in 64 bits but not 32: must error, not truncate.
    const auto args = parseArgs({"--threads", "4294967296"}, {"threads"});
    EXPECT_EXIT(args.getU32("threads", 0),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(Cli, AcceptsU32Max)
{
    const auto args = parseArgs({"--threads", "4294967295"}, {"threads"});
    EXPECT_EQ(args.getU32("threads", 0),
              std::numeric_limits<std::uint32_t>::max());
}

TEST(Cli, RejectsGarbageDouble)
{
    const auto args = parseArgs({"--rate", "fast"}, {"rate"});
    EXPECT_EXIT(args.getDouble("rate", 0.0),
                ::testing::ExitedWithCode(1), "not a number");
}

TEST(Cli, RejectsTrailingGarbageDouble)
{
    const auto args = parseArgs({"--rate", "0.5x"}, {"rate"});
    EXPECT_EXIT(args.getDouble("rate", 0.0),
                ::testing::ExitedWithCode(1), "not a number");
}

TEST(Cli, ParsesNegativeDouble)
{
    const auto args = parseArgs({"--rate", "-0.25"}, {"rate"});
    EXPECT_DOUBLE_EQ(args.getDouble("rate", 0.0), -0.25);
}

TEST(Cli, ParsesU32List)
{
    const auto args = parseArgs({"--degrees", "4,5,6"}, {"degrees"});
    EXPECT_EQ(args.getU32List("degrees", {}),
              (std::vector<std::uint32_t>{4, 5, 6}));
}

TEST(Cli, RejectsEmptyListItem)
{
    const auto args = parseArgs({"--degrees", "4,,6"}, {"degrees"});
    EXPECT_EXIT(args.getU32List("degrees", {}),
                ::testing::ExitedWithCode(1),
                "not an unsigned integer");
}

TEST(Cli, RejectsEmptyList)
{
    const auto args = parseArgs({"--degrees="}, {"degrees"});
    EXPECT_EXIT(args.getU32List("degrees", {}),
                ::testing::ExitedWithCode(1), "");
}

TEST(Cli, RejectsGarbageListItem)
{
    const auto args = parseArgs({"--seeds", "1,x,3"}, {"seeds"});
    EXPECT_EXIT(args.getU64List("seeds", {}),
                ::testing::ExitedWithCode(1),
                "not an unsigned integer");
}
