/**
 * @file
 * Unit tests for the phase subsystem: workload segmentation, sub-trace
 * extraction, multi-phase synthesis, and the phase-gain evaluator.
 *
 * The fixtures are phaseShift() traces, whose epoch structure is the
 * ground truth: the segmenter must recover every epoch boundary to
 * within one window, the union design must verify contention-free
 * against every phase's clique set, and the evaluator's JSON report
 * must be byte-identical across thread counts and reruns.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/verify.hpp"
#include "phase/evaluator.hpp"
#include "phase/multi_design.hpp"
#include "phase/segmenter.hpp"
#include "trace/synthetic.hpp"
#include "util/json.hpp"

using namespace minnoc;
using namespace minnoc::phase;

namespace {

/** The canonical three-epoch fixture (~352 messages, 16 ranks). */
trace::Trace
shiftTrace()
{
    return trace::phaseShift({trace::Pattern::Neighbor,
                              trace::Pattern::Transpose,
                              trace::Pattern::Hotspot});
}

/** A fast methodology configuration for evaluator tests. */
PhaseEvalConfig
fastEvalConfig()
{
    PhaseEvalConfig cfg;
    cfg.methodology.partitioner.constraints.maxDegree = 5;
    cfg.methodology.restarts = 4;
    cfg.threads = 1;
    return cfg;
}

} // namespace

TEST(Segmenter, EmptyTraceYieldsEmptySegmentation)
{
    const trace::Trace tr("empty", 4);
    const auto seg = segmentTrace(tr);
    EXPECT_EQ(seg.numMessages, 0u);
    EXPECT_EQ(seg.numWindows, 0u);
    EXPECT_TRUE(seg.phases.empty());
}

TEST(Segmenter, SinglePatternIsOnePhase)
{
    const auto tr = trace::phaseShift({trace::Pattern::Neighbor});
    const auto seg = segmentTrace(tr);
    ASSERT_EQ(seg.phases.size(), 1u);
    EXPECT_EQ(seg.phases[0].messages, tr.numSends());
    EXPECT_EQ(seg.phases[0].firstWindow, 0u);
    EXPECT_EQ(seg.phases[0].lastWindow, seg.numWindows - 1);
}

TEST(Segmenter, RecoversEpochBoundariesWithinOneWindow)
{
    const auto tr = shiftTrace();
    const auto seg = segmentTrace(tr);
    ASSERT_EQ(seg.phases.size(), 3u);

    // Epoch message counts: neighbor 16x8, transpose skips the four
    // diagonal fixed points of the 4x4 grid (12x8), hotspot 16x8. The
    // true boundaries in message index are 128 and 224; with 64-message
    // windows those land at window starts 2.0 and 3.5.
    const double window = static_cast<double>(seg.config.windowMessages);
    const double expected[] = {128.0 / window, 224.0 / window};
    for (int b = 0; b < 2; ++b) {
        const double got = seg.phases[b + 1].firstWindow;
        EXPECT_NEAR(got, expected[b], 1.0)
            << "boundary " << b << " off by more than one window";
    }
}

TEST(Segmenter, EveryCallOwnedByExactlyOnePhase)
{
    const auto tr = shiftTrace();
    const auto seg = segmentTrace(tr);

    std::set<std::uint32_t> used;
    for (core::ProcId r = 0; r < tr.numRanks(); ++r)
        for (const auto &op : tr.timeline(r))
            if (op.kind == trace::OpKind::Send)
                used.insert(op.callId);

    std::set<std::uint32_t> owned;
    std::size_t messages = 0;
    for (const auto &p : seg.phases) {
        for (const auto c : p.calls) {
            EXPECT_TRUE(owned.insert(c).second)
                << "call " << c << " owned twice";
            EXPECT_EQ(seg.callPhase.at(c), p.index);
        }
        messages += p.messages;
    }
    EXPECT_EQ(owned, used);
    EXPECT_EQ(messages, tr.numSends());
}

TEST(Segmenter, IsDeterministic)
{
    const auto tr = shiftTrace();
    const auto a = segmentTrace(tr);
    const auto b = segmentTrace(tr);
    EXPECT_EQ(a.boundaries, b.boundaries);
    EXPECT_EQ(a.distances, b.distances);
    EXPECT_EQ(a.callPhase, b.callPhase);
}

TEST(Segmenter, RejectsBadConfig)
{
    const auto tr = shiftTrace();
    PhaseConfig cfg;
    cfg.windowMessages = 0;
    EXPECT_EXIT(segmentTrace(tr, cfg), ::testing::ExitedWithCode(1),
                "window");
    cfg = PhaseConfig{};
    cfg.matrixWeight = 1.5;
    EXPECT_EXIT(segmentTrace(tr, cfg), ::testing::ExitedWithCode(1),
                "matrix weight");
}

TEST(SubTrace, PartitionsMessagesAndStaysWellFormed)
{
    const auto tr = shiftTrace();
    const auto seg = segmentTrace(tr);
    ASSERT_EQ(seg.phases.size(), 3u);

    std::size_t total = 0;
    for (std::uint32_t p = 0; p < seg.phases.size(); ++p) {
        const auto sub = phaseSubTrace(tr, seg, p);
        sub.validateMatching(); // panics on unmatched send/recv
        EXPECT_EQ(sub.numRanks(), tr.numRanks());
        EXPECT_EQ(sub.numSends(), seg.phases[p].messages);
        total += sub.numSends();
    }
    EXPECT_EQ(total, tr.numSends());
}

TEST(MultiDesign, SharedRegistriesAlign)
{
    const auto tr = shiftTrace();
    const auto seg = segmentTrace(tr);
    const auto cliques = buildPhaseCliques(tr, seg);

    ASSERT_EQ(cliques.shared.size(), seg.phases.size());
    // Every shared set is pinned to the merged registry: same comm
    // universe, same ids, cliques restricted to the phase's calls.
    std::size_t sharedCliques = 0;
    for (const auto &s : cliques.shared) {
        EXPECT_EQ(s.numComms(), cliques.merged.numComms());
        sharedCliques += s.numCliques();
    }
    EXPECT_EQ(sharedCliques, cliques.merged.numCliques());
}

TEST(MultiDesign, UnionDesignIsContentionFreePerPhase)
{
    const auto tr = shiftTrace();
    const auto seg = segmentTrace(tr);

    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    mcfg.restarts = 4;
    const auto multi = synthesizeMultiPhase(tr, seg, mcfg);

    ASSERT_EQ(multi.unionPhaseViolations.size(), seg.phases.size());
    EXPECT_EQ(multi.unionViolationCount(), 0u);
    // And re-check independently against each phase's shared cliques.
    for (std::uint32_t p = 0; p < seg.phases.size(); ++p) {
        EXPECT_TRUE(core::checkContentionFree(multi.unionDesign,
                                              multi.cliques.shared[p])
                        .empty())
            << "phase " << p;
    }
}

TEST(Evaluator, ReportIsByteIdenticalAcrossThreadsAndReruns)
{
    const auto tr = shiftTrace();
    auto cfg = fastEvalConfig();
    const auto first = evaluatePhases(tr, cfg).toJson();
    const auto rerun = evaluatePhases(tr, cfg).toJson();
    EXPECT_EQ(first, rerun);

    cfg.threads = 4;
    const auto threaded = evaluatePhases(tr, cfg).toJson();
    EXPECT_EQ(first, threaded);
}

TEST(Evaluator, ReportParsesAndCoversAllVariants)
{
    const auto tr = shiftTrace();
    const auto report = evaluatePhases(tr, fastEvalConfig());
    const auto parsed = json::parse(report.toJson());
    ASSERT_TRUE(parsed.has_value());
    const auto &root = parsed->asObject();

    EXPECT_EQ(root.at("schema").asString(), "minnoc-phase-1");
    EXPECT_EQ(root.at("phases").asArray().size(), report.phases.size());
    const auto &variants = root.at("variants").asObject();
    for (const char *v : {"monolithic", "union", "time_multiplexed"}) {
        const auto &obj = variants.at(v).asObject();
        EXPECT_GT(obj.at("exec_time").asNumber(), 0.0) << v;
        EXPECT_GT(obj.at("area").asNumber(), 0.0) << v;
    }
    const auto &reconfig = root.at("reconfig").asObject();
    EXPECT_EQ(reconfig.at("count").asNumber(),
              static_cast<double>(report.phases.size() - 1));
}

TEST(Evaluator, ReconfigCostRaisesTimeMultiplexedExecTime)
{
    const auto tr = shiftTrace();
    auto cfg = fastEvalConfig();
    cfg.reconfigCost = 0;
    const auto cheap = evaluatePhases(tr, cfg);
    cfg.reconfigCost = 1000;
    const auto dear = evaluatePhases(tr, cfg);

    EXPECT_EQ(dear.timeMultiplexed.execTime,
              cheap.timeMultiplexed.execTime +
                  1000 * static_cast<sim::Cycle>(dear.reconfigCount));
    // Monolithic and union replay the full trace on one network and
    // never pay the penalty.
    EXPECT_EQ(dear.monolithic.execTime, cheap.monolithic.execTime);
    EXPECT_EQ(dear.unionVariant.execTime, cheap.unionVariant.execTime);
}

TEST(Evaluator, TimeMultiplexedSummaryMatchesFullReport)
{
    const auto tr = shiftTrace();
    const auto cfg = fastEvalConfig();
    const auto report = evaluatePhases(tr, cfg);
    const auto summary = evaluateTimeMultiplexed(tr, cfg);

    EXPECT_EQ(summary.phases, report.phases.size());
    EXPECT_EQ(summary.execTime, report.timeMultiplexed.execTime);
    EXPECT_DOUBLE_EQ(summary.energy, report.timeMultiplexed.energy);
    EXPECT_DOUBLE_EQ(summary.avgLatency,
                     report.timeMultiplexed.avgLatency);
    EXPECT_EQ(summary.reconfigCycles, report.reconfigCycles);
}
