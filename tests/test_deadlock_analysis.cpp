/**
 * @file
 * Tests for channel-dependency-graph analysis and up-star/down-star routing.
 */

#include <gtest/gtest.h>

#include "core/methodology.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/deadlock_analysis.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::topo;

TEST(Cdg, CrossbarIsAcyclic)
{
    const auto net = buildCrossbar(8);
    const auto report =
        analyzeChannelDependencies(*net.topo, *net.routing);
    EXPECT_TRUE(report.acyclic);
    EXPECT_EQ(report.usedChannels, 16u);
}

TEST(Cdg, MeshDorIsAcyclic)
{
    // Dally & Seitz's classic result: XY dimension-order routing on a
    // mesh has an acyclic CDG.
    for (const std::uint32_t procs : {4u, 9u, 16u}) {
        const auto net = buildMesh(procs);
        const auto report =
            analyzeChannelDependencies(*net.topo, *net.routing);
        EXPECT_TRUE(report.acyclic) << procs << "-node mesh";
        EXPECT_GT(report.dependencies, 0u);
    }
}

TEST(Cdg, TorusTfarIsCyclic)
{
    // Minimal fully adaptive routing on torus rings creates dependency
    // cycles — exactly why the paper pairs it with deadlock recovery.
    const auto net = buildTorus(16);
    const auto report =
        analyzeChannelDependencies(*net.topo, *net.routing);
    EXPECT_FALSE(report.acyclic);
    EXPECT_GE(report.cycleWitness.size(), 2u);
    // The witness is a genuine cycle: consecutive links share a node.
    const auto &cycle = report.cycleWitness;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        const auto &cur = net.topo->link(cycle[i]);
        const auto &nxt =
            net.topo->link(cycle[(i + 1) % cycle.size()]);
        EXPECT_EQ(cur.to, nxt.from);
    }
}

TEST(Cdg, ReportToString)
{
    const auto mesh = buildMesh(4);
    const auto report =
        analyzeChannelDependencies(*mesh.topo, *mesh.routing);
    EXPECT_NE(report.toString().find("acyclic"), std::string::npos);
}

namespace {

topo::BuiltNetwork
generatedNetwork(trace::Benchmark bench, std::uint32_t ranks)
{
    trace::NasConfig cfg;
    cfg.ranks = ranks;
    cfg.iterations = 1;
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    const auto outcome = core::runMethodology(
        trace::analyzeByCall(trace::generateBenchmark(bench, cfg)),
        mcfg);
    const auto plan = planFloor(outcome.design);
    return buildFromDesign(outcome.design, plan);
}

} // namespace

TEST(UpDown, CoversAllPairsOnGeneratedNetworks)
{
    for (const auto bench : {trace::Benchmark::CG, trace::Benchmark::MG}) {
        const auto net =
            generatedNetwork(bench, trace::smallConfigRanks(bench));
        const auto updown = makeUpDownRouting(*net.topo);
        EXPECT_NO_FATAL_FAILURE(validateRouting(*net.topo, *updown));
    }
}

TEST(UpDown, AlwaysAcyclicCdg)
{
    // The whole point of up-star/down-star: deadlock freedom by construction,
    // on regular and irregular topologies alike.
    {
        const auto mesh = buildMesh(16);
        const auto updown = makeUpDownRouting(*mesh.topo);
        EXPECT_TRUE(analyzeChannelDependencies(*mesh.topo, *updown)
                        .acyclic);
    }
    {
        const auto torus = buildTorus(16);
        const auto updown = makeUpDownRouting(*torus.topo);
        EXPECT_TRUE(analyzeChannelDependencies(*torus.topo, *updown)
                        .acyclic);
    }
    for (const auto bench : {trace::Benchmark::CG, trace::Benchmark::BT}) {
        const auto net =
            generatedNetwork(bench, trace::smallConfigRanks(bench));
        const auto updown = makeUpDownRouting(*net.topo);
        EXPECT_TRUE(
            analyzeChannelDependencies(*net.topo, *updown).acyclic)
            << trace::benchmarkName(bench);
    }
}

TEST(UpDown, PathsAreLegal)
{
    const auto net = generatedNetwork(trace::Benchmark::CG, 8);
    const auto updown = makeUpDownRouting(*net.topo);
    // Re-derive the orientation the builder used and check every path
    // never goes up after going down.
    // (Legality is implied by construction; this guards regressions.)
    const auto report = analyzeChannelDependencies(*net.topo, *updown);
    EXPECT_TRUE(report.acyclic);
}

TEST(UpDown, SimulatesCleanly)
{
    trace::NasConfig cfg;
    cfg.ranks = 8;
    cfg.iterations = 1;
    const auto tr = trace::generateCG(cfg);
    const auto net = generatedNetwork(trace::Benchmark::CG, 8);
    const auto updown = makeUpDownRouting(*net.topo);
    const auto res = sim::runTrace(tr, *net.topo, *updown);
    EXPECT_EQ(res.packetsDelivered, tr.numSends());
    EXPECT_EQ(res.deadlockRecoveries, 0u);
}

TEST(UpDown, SourceRoutedDesignsAreEmpiricallyAcyclicToo)
{
    // The paper observed zero deadlocks on its generated networks; the
    // CDG analysis explains why: the methodology's shortest-path-style
    // routes rarely create cyclic dependencies. Check the five small
    // configurations.
    for (const auto bench : trace::kAllBenchmarks) {
        const auto net =
            generatedNetwork(bench, trace::smallConfigRanks(bench));
        const auto report =
            analyzeChannelDependencies(*net.topo, *net.routing);
        // Not a theorem — record the empirical expectation and surface
        // any change loudly.
        EXPECT_TRUE(report.acyclic)
            << trace::benchmarkName(bench)
            << ": generated source routing acquired a CDG cycle";
    }
}
