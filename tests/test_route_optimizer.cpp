/**
 * @file
 * Unit tests for Best_Route.
 */

#include <gtest/gtest.h>

#include "core/design_network.hpp"
#include "core/route_optimizer.hpp"
#include "util/rng.hpp"

using namespace minnoc::core;
using minnoc::Rng;

namespace {

/**
 * A clique set engineered so the direct route is suboptimal: switch A
 * holds {0,1}, B holds {2,3}, C holds {4,5} after the test's manual
 * partitioning. Comms (0,4) and (1,5) conflict (same clique) and both
 * cross A->C; detouring one of them through B lets each pipe stay at
 * one link.
 */
CliqueSet
detourCliques()
{
    CliqueSet ks(6);
    ks.addClique({Comm(0, 4), Comm(1, 5)});
    return ks;
}

} // namespace

TEST(BestRoute, DetourReducesPipeWidth)
{
    CliqueSet ks = detourCliques();
    DesignNetwork net(ks);
    Rng rng(1);
    const SwitchId b = net.splitSwitch(0, rng);
    const SwitchId c = net.splitSwitch(0, rng);
    // Manual partition: A(=0) {0,1}, B {2,3}, C {4,5}.
    for (ProcId p : {0u, 1u})
        net.moveProc(p, 0);
    for (ProcId p : {2u, 3u})
        net.moveProc(p, b);
    for (ProcId p : {4u, 5u})
        net.moveProc(p, c);
    net.checkInvariants();

    // Both conflicting comms take the direct A->C pipe: needs 2 links.
    EXPECT_EQ(net.fastColor(PipeKey(0, c)), 2u);
    EXPECT_EQ(net.totalEstimatedLinks(), 2u);

    const auto stats = bestRoute(net, 0, b);
    net.checkInvariants();
    EXPECT_GT(stats.triedMoves, 0u);

    // After optimization each pipe should need at most one link and the
    // total must not exceed the direct layout's two.
    EXPECT_LE(net.fastColor(PipeKey(0, c)), 2u);
    EXPECT_LE(net.totalEstimatedLinks(), 2u);
    for (const auto &key : net.pipes())
        EXPECT_LE(net.fastColor(key), 2u);
}

TEST(BestRoute, NoOpOnConflictFreeTraffic)
{
    CliqueSet ks(6);
    // Two comms in different cliques: they can share a link freely.
    ks.addClique({Comm(0, 4)});
    ks.addClique({Comm(1, 5)});
    DesignNetwork net(ks);
    Rng rng(2);
    const SwitchId b = net.splitSwitch(0, rng);
    const SwitchId c = net.splitSwitch(0, rng);
    for (ProcId p : {0u, 1u})
        net.moveProc(p, 0);
    for (ProcId p : {2u, 3u})
        net.moveProc(p, b);
    for (ProcId p : {4u, 5u})
        net.moveProc(p, c);

    const auto before = net.totalEstimatedLinks();
    const auto stats = bestRoute(net, 0, b);
    EXPECT_EQ(stats.committedMoves, 0u);
    EXPECT_EQ(net.totalEstimatedLinks(), before);
}

TEST(BestRoute, NeverIncreasesTotalEstimate)
{
    // Random-ish larger scenario: whatever Best_Route does, the global
    // estimate must not grow (edits only commit on improvement).
    CliqueSet ks(8);
    ks.addClique({Comm(0, 4), Comm(1, 5), Comm(2, 6), Comm(3, 7)});
    ks.addClique({Comm(4, 0), Comm(5, 1), Comm(6, 2), Comm(7, 3)});
    DesignNetwork net(ks);
    Rng rng(5);
    const SwitchId b = net.splitSwitch(0, rng);
    const auto before = net.totalEstimatedLinks();
    bestRoute(net, 0, b);
    net.checkInvariants();
    EXPECT_LE(net.totalEstimatedLinks(), before);
}

TEST(BestRoute, SameSwitchPanics)
{
    CliqueSet ks(4);
    ks.addClique({Comm(0, 1)});
    DesignNetwork net(ks);
    EXPECT_DEATH(bestRoute(net, 0, 0), "si == sj");
}

TEST(BestRoute, StraighteningRemovesUselessDetour)
{
    CliqueSet ks(6);
    ks.addClique({Comm(0, 4)});
    DesignNetwork net(ks);
    Rng rng(3);
    const SwitchId b = net.splitSwitch(0, rng);
    const SwitchId c = net.splitSwitch(0, rng);
    for (ProcId p : {0u, 1u})
        net.moveProc(p, 0);
    for (ProcId p : {2u, 3u})
        net.moveProc(p, b);
    for (ProcId p : {4u, 5u})
        net.moveProc(p, c);

    // Install a pointless detour through B by hand.
    const CommId comm = ks.findComm(Comm(0, 4));
    net.setRoute(comm, {0, b, c});
    EXPECT_EQ(net.totalEstimatedLinks(), 2u);

    bestRoute(net, 0, b);
    net.checkInvariants();
    // Straightening should reclaim the extra pipe.
    EXPECT_EQ(net.totalEstimatedLinks(), 1u);
    EXPECT_EQ(net.route(comm), (std::vector<SwitchId>{0, c}));
}
