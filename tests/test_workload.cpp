/**
 * @file
 * Unit tests for multi-application workload merging.
 */

#include <gtest/gtest.h>

#include "core/methodology.hpp"
#include "core/workload.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::core;

namespace {

CliqueSet
benchCliques(trace::Benchmark b, std::uint32_t ranks)
{
    trace::NasConfig cfg;
    cfg.ranks = ranks;
    cfg.iterations = 1;
    return trace::analyzeByCall(trace::generateBenchmark(b, cfg));
}

} // namespace

TEST(Workload, MergePreservesAllCliques)
{
    CliqueSet a(4);
    a.addClique({Comm(0, 1), Comm(2, 3)});
    CliqueSet b(4);
    b.addClique({Comm(1, 0)});
    b.addClique({Comm(0, 1), Comm(2, 3)}); // duplicate of a's clique

    const auto merged = mergeCliqueSets({a, b});
    EXPECT_EQ(merged.numCliques(), 2u); // duplicate collapsed
    EXPECT_EQ(merged.numProcs(), 4u);
    EXPECT_TRUE(coveredBy(a, merged));
    EXPECT_TRUE(coveredBy(b, merged));
}

TEST(Workload, MergeRejectsMismatchedProcs)
{
    CliqueSet a(4);
    a.addClique({Comm(0, 1)});
    CliqueSet b(8);
    b.addClique({Comm(0, 1)});
    EXPECT_DEATH(mergeCliqueSets({a, b}), "mismatch");
}

TEST(Workload, MergeRejectsEmpty)
{
    EXPECT_DEATH(mergeCliqueSets(std::vector<const CliqueSet *>{}),
                 "no inputs");
}

TEST(Workload, CoveredByDetectsMissingComm)
{
    CliqueSet part(4);
    part.addClique({Comm(0, 1), Comm(2, 3)});
    CliqueSet whole(4);
    whole.addClique({Comm(0, 1)});
    EXPECT_FALSE(coveredBy(part, whole));
}

TEST(Workload, CoveredByDetectsSplitClique)
{
    // Both comms exist in `whole` but never together in one clique:
    // a network contention-free for `whole` may still collide them.
    CliqueSet part(4);
    part.addClique({Comm(0, 1), Comm(2, 3)});
    CliqueSet whole(4);
    whole.addClique({Comm(0, 1)});
    whole.addClique({Comm(2, 3)});
    EXPECT_FALSE(coveredBy(part, whole));
}

TEST(Workload, CoveredBySubsetCliqueIsFine)
{
    CliqueSet part(6);
    part.addClique({Comm(0, 1)});
    CliqueSet whole(6);
    whole.addClique({Comm(0, 1), Comm(2, 3), Comm(4, 5)});
    EXPECT_TRUE(coveredBy(part, whole));
}

TEST(Workload, MergedDesignServesBothApplications)
{
    // Design once for CG-16 + FFT-16 together: the result must satisfy
    // Theorem 1 for each application's own clique set.
    const auto cg = benchCliques(trace::Benchmark::CG, 16);
    const auto fft = benchCliques(trace::Benchmark::FFT, 16);
    const auto merged = mergeCliqueSets({cg, fft});
    EXPECT_TRUE(coveredBy(cg, merged));
    EXPECT_TRUE(coveredBy(fft, merged));

    MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    mcfg.restarts = 8;
    const auto outcome = runMethodology(merged, mcfg);
    // The merged workload must be contention-free on the design...
    EXPECT_TRUE(outcome.violations.empty());
    // ...which implies each component application is too.
    EXPECT_TRUE(checkContentionFree(outcome.design, merged).empty());
}
