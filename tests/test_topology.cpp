/**
 * @file
 * Unit tests for the concrete topology layer and builders.
 */

#include <gtest/gtest.h>

#include "topo/builders.hpp"
#include "topo/topology.hpp"

using namespace minnoc;
using namespace minnoc::topo;

TEST(Topology, NodeIndexSpaces)
{
    Topology t(4, 2, "test");
    EXPECT_EQ(t.numNodes(), 6u);
    EXPECT_EQ(t.procNode(3), 3u);
    EXPECT_EQ(t.switchNode(0), 4u);
    EXPECT_TRUE(t.isProc(2));
    EXPECT_FALSE(t.isProc(4));
    EXPECT_EQ(t.switchOf(5), 1u);
    EXPECT_EQ(t.procOf(1), 1u);
}

TEST(Topology, LinksAndAdjacency)
{
    Topology t(2, 1, "test");
    const auto [fwd, bwd] = t.addDuplex(t.procNode(0), t.switchNode(0), 3);
    EXPECT_EQ(t.link(fwd).from, t.procNode(0));
    EXPECT_EQ(t.link(fwd).to, t.switchNode(0));
    EXPECT_EQ(t.link(fwd).length, 3u);
    EXPECT_EQ(t.link(fwd).delay(), 3u);
    EXPECT_EQ(t.link(bwd).from, t.switchNode(0));
    EXPECT_EQ(t.outLinks(t.procNode(0)).size(), 1u);
    EXPECT_EQ(t.inLinks(t.procNode(0)).size(), 1u);
}

TEST(Topology, ZeroLengthLinkHasUnitDelay)
{
    Topology t(1, 1, "test");
    const auto [fwd, bwd] = t.addDuplex(0, t.switchNode(0), 0);
    (void)bwd;
    EXPECT_EQ(t.link(fwd).length, 0u);
    EXPECT_EQ(t.link(fwd).delay(), 1u);
}

TEST(Topology, FindLinksPreservesOrder)
{
    Topology t(1, 2, "test");
    t.addDuplex(0, t.switchNode(0), 1);
    const auto a = t.addLink(t.switchNode(0), t.switchNode(1), 1);
    const auto b = t.addLink(t.switchNode(0), t.switchNode(1), 1);
    const auto links = t.findLinks(t.switchNode(0), t.switchNode(1));
    ASSERT_EQ(links.size(), 2u);
    EXPECT_EQ(links[0], a);
    EXPECT_EQ(links[1], b);
}

TEST(Topology, InjectionEjectionRequireExactlyOne)
{
    Topology t(1, 1, "test");
    EXPECT_DEATH(t.injectionLink(0), "injection");
    t.addDuplex(0, t.switchNode(0), 1);
    EXPECT_NO_FATAL_FAILURE(t.injectionLink(0));
    t.addDuplex(0, t.switchNode(0), 1);
    EXPECT_DEATH(t.injectionLink(0), "injection");
}

TEST(Topology, SelfLinkRejected)
{
    Topology t(2, 1, "test");
    EXPECT_DEATH(t.addLink(0, 0), "self-link");
}

TEST(Builders, CrossbarShape)
{
    const auto net = buildCrossbar(8);
    EXPECT_EQ(net.topo->numProcs(), 8u);
    EXPECT_EQ(net.topo->numSwitches(), 1u);
    EXPECT_EQ(net.topo->numLinks(), 16u); // 8 duplex connections
    EXPECT_EQ(net.routing->name(), "crossbar");
    EXPECT_FALSE(net.routing->adaptive());
}

TEST(Builders, MeshShape)
{
    const auto net = buildMesh(16); // 4x4
    EXPECT_EQ(net.topo->numSwitches(), 16u);
    // Links: 16 proc duplex + 24 mesh duplex = 2*(16+24) unidirectional.
    EXPECT_EQ(net.topo->numLinks(), 2u * (16 + 24));
    // Inter-switch links have length 1, proc links length 0.
    std::uint64_t area = net.topo->totalLinkArea();
    EXPECT_EQ(area, 2u * 24);
}

TEST(Builders, PrimeCountBecomesChainMesh)
{
    // gridDims(7) falls back to a 7x1 chain, which is a valid mesh.
    const auto net = buildMesh(7);
    EXPECT_EQ(net.topo->numSwitches(), 7u);
    // 7 proc duplex + 6 chain duplex connections.
    EXPECT_EQ(net.topo->numLinks(), 2u * (7 + 6));
}

TEST(Builders, TorusShape)
{
    const auto net = buildTorus(16); // 4x4 folded
    EXPECT_EQ(net.topo->numSwitches(), 16u);
    // 16 proc duplex + 32 ring duplex connections.
    EXPECT_EQ(net.topo->numLinks(), 2u * (16 + 32));
    // All ring links are length 2: total area = 2 * 32 * 2.
    EXPECT_EQ(net.topo->totalLinkArea(), 2u * 32 * 2);
    EXPECT_TRUE(net.routing->adaptive());
}

TEST(Builders, TorusTwoRingKeepsParallelLinks)
{
    const auto net = buildTorus(8); // 4x2: vertical rings of 2
    // Each column pair is connected by two parallel duplex connections.
    std::size_t parallel = 0;
    for (core::SwitchId s = 0; s < 4; ++s) {
        const auto links = net.topo->findLinks(
            net.topo->switchNode(s), net.topo->switchNode(s + 4));
        parallel += links.size();
    }
    EXPECT_EQ(parallel, 8u); // 2 per column x 4 columns
}

TEST(Builders, EveryTopologyValidates)
{
    for (const std::uint32_t procs : {2u, 4u, 8u, 9u, 16u}) {
        if (procs != 9) {
            EXPECT_NO_FATAL_FAILURE(buildCrossbar(procs));
            EXPECT_NO_FATAL_FAILURE(buildMesh(procs));
            EXPECT_NO_FATAL_FAILURE(buildTorus(procs));
        } else {
            EXPECT_NO_FATAL_FAILURE(buildMesh(procs));
            EXPECT_NO_FATAL_FAILURE(buildTorus(procs));
        }
    }
}
