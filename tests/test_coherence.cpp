/**
 * @file
 * Unit tests for the coherence traffic generator: protocol-expansion
 * invariants, seed determinism, trace well-formedness, and the
 * activity-vs-static power cross-check on the NAS golden patterns.
 */

#include <gtest/gtest.h>

#include <map>

#include "coh/coherence.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/power.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::coh;

namespace {

CoherenceConfig
smallConfig()
{
    CoherenceConfig cfg;
    cfg.ranks = 8;
    cfg.blocks = 32;
    cfg.maxSharers = 3;
    cfg.rounds = 3;
    cfg.opsPerRankPerRound = 12;
    return cfg;
}

} // namespace

TEST(Coherence, SeedDeterminism)
{
    const auto cfg = smallConfig();
    const auto a = expandCoherence(cfg);
    const auto b = expandCoherence(cfg);
    ASSERT_EQ(a.messages.size(), b.messages.size());
    for (std::size_t i = 0; i < a.messages.size(); ++i) {
        EXPECT_EQ(a.messages[i].type, b.messages[i].type);
        EXPECT_EQ(a.messages[i].src, b.messages[i].src);
        EXPECT_EQ(a.messages[i].dst, b.messages[i].dst);
        EXPECT_EQ(a.messages[i].bytes, b.messages[i].bytes);
        EXPECT_EQ(a.messages[i].callId, b.messages[i].callId);
        EXPECT_EQ(a.messages[i].txn, b.messages[i].txn);
    }

    auto other = cfg;
    other.seed = 99;
    const auto c = expandCoherence(other);
    bool differs = c.messages.size() != a.messages.size();
    for (std::size_t i = 0; !differs && i < a.messages.size(); ++i)
        differs = a.messages[i].type != c.messages[i].type ||
                  a.messages[i].src != c.messages[i].src ||
                  a.messages[i].dst != c.messages[i].dst;
    EXPECT_TRUE(differs);
}

TEST(Coherence, EveryGetXPrecedesItsInvalidations)
{
    const auto exp = expandCoherence(smallConfig());
    // Per transaction: the index of its GetX (if any) and its Invs.
    std::map<std::uint32_t, std::size_t> getxAt;
    for (std::size_t i = 0; i < exp.messages.size(); ++i)
        if (exp.messages[i].type == MsgType::GetX)
            getxAt[exp.messages[i].txn] = i;
    std::size_t invsChecked = 0;
    for (std::size_t i = 0; i < exp.messages.size(); ++i) {
        const auto &m = exp.messages[i];
        if (m.type != MsgType::Inv)
            continue;
        const auto it = getxAt.find(m.txn);
        if (it == getxAt.end())
            continue; // load-side capacity eviction, no GetX
        EXPECT_LT(it->second, i);
        ++invsChecked;
    }
    EXPECT_GT(invsChecked, 0u);
}

TEST(Coherence, AckCountsMatchSharerCounts)
{
    const auto exp = expandCoherence(smallConfig());
    // The ledger counts protocol events, so the pairing survives
    // self-message elision: acks == invalidations per transaction, and
    // the aggregate per-type counters agree with the ledger sums.
    std::uint64_t invs = 0;
    std::uint64_t acks = 0;
    for (const auto &txn : exp.txns) {
        EXPECT_EQ(txn.acks, txn.invalidations);
        invs += txn.invalidations;
        acks += txn.acks;
    }
    EXPECT_GT(invs, 0u);
    EXPECT_EQ(invs,
              exp.stats.perType[static_cast<std::size_t>(MsgType::Inv)]);
    EXPECT_EQ(acks,
              exp.stats.perType[static_cast<std::size_t>(MsgType::Ack)]);
    EXPECT_LE(exp.stats.maxInvFanout, smallConfig().maxSharers);
}

TEST(Coherence, TraceRoundTripsThroughAnalyzer)
{
    const auto cfg = smallConfig();
    const auto exp = expandCoherence(cfg);
    const auto tr = traceFromExpansion(exp, cfg);
    EXPECT_EQ(tr.numRanks(), cfg.ranks);
    // Only non-local messages become Sends.
    std::uint64_t wire = 0;
    for (const auto &m : exp.messages)
        wire += m.src != m.dst ? 1 : 0;
    EXPECT_EQ(tr.numSends(), wire);

    const auto cliques = trace::analyzeByCall(tr);
    EXPECT_GT(cliques.numCliques(), 0u);
    EXPECT_GT(cliques.numComms(), 0u);
    EXPECT_EQ(cliques.numProcs(), cfg.ranks);
}

TEST(Coherence, ReplayIsDeadlockFree)
{
    CoherenceConfig cfg = smallConfig();
    cfg.homeMap = HomeMap::FirstTouch;
    const auto tr = coherenceTrace(cfg);
    const auto net = topo::buildMesh(cfg.ranks);
    const auto res = sim::runTrace(tr, *net.topo, *net.routing);
    EXPECT_EQ(res.deadlockRecoveries, 0u);
    EXPECT_GT(res.execTime, 0);
}

TEST(Coherence, ParseMixAcceptsAndRejects)
{
    std::string err;
    const auto mix = parseMix(
        "private:0.5,read_shared:0.3,migratory:0.1,"
        "producer_consumer:0.1",
        err);
    ASSERT_TRUE(mix.has_value()) << err;
    EXPECT_DOUBLE_EQ(mix->weights[0], 0.5);
    EXPECT_DOUBLE_EQ(mix->weights[3], 0.1);

    const char *bad[] = {"",          "private",      "private:",
                         "bogus:1",   "private:-1",   "private:nan",
                         "private:1,private:2",       ":0.5",
                         "private:0,read_shared:0",   "private:1,,"};
    for (const auto *text : bad) {
        err.clear();
        EXPECT_FALSE(parseMix(text, err).has_value()) << text;
        EXPECT_FALSE(err.empty()) << text;
    }
}

TEST(Coherence, ValidateRejectsDegenerateConfigs)
{
    CoherenceConfig cfg = smallConfig();
    cfg.ranks = 1;
    EXPECT_DEATH(cfg.validate(), "ranks");
    cfg = smallConfig();
    cfg.blocks = 0;
    EXPECT_DEATH(cfg.validate(), "block");
    cfg = smallConfig();
    cfg.maxSharers = 0;
    EXPECT_DEATH(cfg.validate(), "sharer");
}

TEST(Power, ActivityVsStaticOnGoldenPatterns)
{
    // Cross-check both tiers on the five NAS patterns: the static tier
    // is the historical model (same numbers the golden designs were
    // priced with), the activity tier must land within a documented
    // envelope of it — counters-driven, not a rescale, but the same
    // order of magnitude on the same traffic.
    topo::PowerModel activityModel;
    activityModel.kind = topo::PowerModelKind::Activity;
    for (const auto bench : trace::kAllBenchmarks) {
        trace::NasConfig cfg;
        cfg.ranks = 16;
        cfg.iterations = 1;
        const auto tr = trace::generateBenchmark(bench, cfg);
        const auto net = topo::buildMesh(cfg.ranks);
        const auto res = sim::runTrace(tr, *net.topo, *net.routing);

        const auto stat = topo::computeEnergy(*net.topo, res.linkFlits,
                                              res.execTime);
        const auto act =
            topo::computeEnergy(*net.topo, res.linkFlits, res.execTime,
                                res.activity, activityModel);

        // Static tier: exactly the historical per-flit-hop accounting,
        // independent of the activity counters.
        const auto statAgain = topo::computeEnergy(
            *net.topo, res.linkFlits, res.execTime, res.activity,
            topo::PowerModel{});
        EXPECT_DOUBLE_EQ(stat.total(), statAgain.total());
        EXPECT_DOUBLE_EQ(stat.bufferDynamic, 0.0);
        EXPECT_DOUBLE_EQ(stat.bufferLeakage, 0.0);

        // Activity tier: buffers billed, total within [0.25x, 4x] of
        // static on mesh replays of well-behaved traffic (see
        // DESIGN.md §5l).
        EXPECT_GT(act.bufferDynamic, 0.0)
            << trace::benchmarkName(bench);
        const double ratio = act.total() / stat.total();
        EXPECT_GT(ratio, 0.25) << trace::benchmarkName(bench);
        EXPECT_LT(ratio, 4.0) << trace::benchmarkName(bench);
    }
}

TEST(Power, SignatureAppendsOnlyOnActivity)
{
    topo::PowerModel stat;
    topo::PowerModel act;
    act.kind = topo::PowerModelKind::Activity;
    EXPECT_EQ(stat.signature().find("act="), std::string::npos);
    EXPECT_NE(act.signature().find("act=1"), std::string::npos);
    EXPECT_NE(stat.signature(), act.signature());
}
