/**
 * @file
 * Shared fixtures for the distributed-exploration test suites.
 *
 * Both the pipe-transport tests (test_dist.cpp) and the remote-host
 * tests (test_dist_hosts.cpp) need the same small deterministic
 * workload, the same fault-injection env plumbing, and — for the
 * socket tests — real `minnoc serve` daemons living in their own
 * processes so they can be SIGKILLed, crashed via the chaos hooks, or
 * drained without taking the test runner down with them.
 *
 * DaemonProc forks a child that builds a serve::Server on an ephemeral
 * loopback port, reports the bound port back through a pipe, and then
 * serves until SIGTERM (graceful drain) or a harsher signal from the
 * test. The child never returns into gtest: every exit path is
 * _exit(), so a forked daemon cannot double-report test results or
 * flush the parent's buffers.
 */

#ifndef MINNOC_TESTS_DIST_TEST_HARNESS_HPP
#define MINNOC_TESTS_DIST_TEST_HARNESS_HPP

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "dse/explorer.hpp"
#include "serve/server.hpp"
#include "trace/nas_generators.hpp"
#include "trace/synthetic.hpp"

namespace minnoc::disttest {

/** Fresh (removed) per-test scratch directory under TempDir. */
inline std::string
tempCacheDir(const char *leaf)
{
    const auto dir = std::filesystem::path(::testing::TempDir()) / leaf;
    std::filesystem::remove_all(dir);
    return dir.string();
}

/** 2 x 2 = 4-job grid on CG-8, mirroring test_dse's smallConfig. */
inline dse::ExploreConfig
smallConfig(const std::string &cacheDir, bool useCache)
{
    dse::ExploreConfig cfg;
    cfg.grid.maxDegrees = {4, 5};
    cfg.grid.restarts = {2};
    cfg.grid.seeds = {1};
    cfg.grid.unidirectional = {0};
    cfg.grid.vcs = {2, 3};
    cfg.threads = 1;
    cfg.cacheDir = cacheDir;
    cfg.useCache = useCache;
    return cfg;
}

inline trace::Trace
cgTrace()
{
    trace::NasConfig ncfg;
    ncfg.ranks = 8;
    ncfg.iterations = 1;
    return trace::generateCG(ncfg);
}

/** RAII guard for the fault-injection environment hooks. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : _name(name)
    {
        ::setenv(name, value, 1);
    }
    ~EnvGuard() { ::unsetenv(_name); }

    EnvGuard(const EnvGuard &) = delete;
    EnvGuard &operator=(const EnvGuard &) = delete;

  private:
    const char *_name;
};

namespace detail {
/** The forked child's server, for the SIGTERM drain handler. */
inline serve::Server *gChildServer = nullptr;

inline void
onChildTerm(int)
{
    if (gChildServer)
        gChildServer->requestStop(); // async-signal-safe
}
} // namespace detail

/**
 * A real `minnoc serve` daemon in a forked child process, bound to an
 * ephemeral loopback port.
 *
 * The child applies Options::env before constructing the server, so
 * the serve-side chaos hooks (MINNOC_DIST_TEST_CRASH/HANG = "serve")
 * can be armed per daemon without leaking into the test process or
 * its forked pipe workers.
 */
class DaemonProc
{
  public:
    struct Options
    {
        std::uint32_t workers = 1;
        std::size_t queueCapacity = 64;
        std::string cacheDir;
        bool useCache = true;
        /**
         * Generous ceilings: the coordinator forwards its worker
         * timeout as the request deadline, and chaos tests must see
         * the coordinator's timeout fire, never the daemon's.
         */
        std::int64_t defaultDeadlineMs = 600'000;
        std::int64_t maxDeadlineMs = 600'000;
        /** (name, value) pairs set in the child before start(). */
        std::vector<std::pair<std::string, std::string>> env;
    };

    explicit DaemonProc(const Options &opt) { launch(opt); }
    DaemonProc() : DaemonProc(Options{}) {}

    ~DaemonProc()
    {
        if (_pid > 0) {
            kill(SIGKILL);
            await();
        }
    }

    DaemonProc(const DaemonProc &) = delete;
    DaemonProc &operator=(const DaemonProc &) = delete;

    /** Bound TCP port; 0 when the daemon failed to come up. */
    int port() const { return _port; }
    pid_t pid() const { return _pid; }
    std::string hostSpec() const
    {
        return "127.0.0.1:" + std::to_string(_port);
    }

    void kill(int sig)
    {
        if (_pid > 0)
            ::kill(_pid, sig);
    }

    /**
     * Reap the child; returns its exit code, or 128+signal when it
     * died on one. Idempotent (returns the cached status after the
     * first reap).
     */
    int await()
    {
        if (_pid <= 0)
            return _status;
        int status = 0;
        while (::waitpid(_pid, &status, 0) < 0 && errno == EINTR) {
        }
        _pid = -1;
        _status = WIFEXITED(status) ? WEXITSTATUS(status)
                  : WIFSIGNALED(status)
                      ? 128 + WTERMSIG(status)
                      : -1;
        return _status;
    }

    /** SIGTERM (graceful drain) then reap. */
    int terminate()
    {
        kill(SIGTERM);
        return await();
    }

  private:
    void launch(const Options &opt)
    {
        int portPipe[2] = {-1, -1};
        if (::pipe(portPipe) != 0)
            return;
        _pid = ::fork();
        if (_pid == 0) {
            ::close(portPipe[0]);
            for (const auto &[name, value] : opt.env)
                ::setenv(name.c_str(), value.c_str(), 1);
            serve::ServerConfig cfg;
            cfg.port = 0; // ephemeral
            cfg.workers = opt.workers;
            cfg.queueCapacity = opt.queueCapacity;
            cfg.cacheDir = opt.cacheDir;
            cfg.useCache = opt.useCache;
            cfg.defaultDeadlineMs = opt.defaultDeadlineMs;
            cfg.maxDeadlineMs = opt.maxDeadlineMs;
            cfg.drainMs = 2'000;
            serve::Server server(std::move(cfg));
            detail::gChildServer = &server;
            std::signal(SIGTERM, detail::onChildTerm);
            std::signal(SIGPIPE, SIG_IGN);
            std::string err;
            if (!server.start(err)) {
                ::close(portPipe[1]);
                ::_exit(3);
            }
            const std::int32_t port = server.boundPort();
            (void)!::write(portPipe[1], &port, sizeof port);
            ::close(portPipe[1]);
            server.serveForever();
            detail::gChildServer = nullptr;
            ::_exit(0);
        }
        ::close(portPipe[1]);
        if (_pid > 0) {
            std::int32_t port = 0;
            ssize_t n;
            while ((n = ::read(portPipe[0], &port, sizeof port)) < 0 &&
                   errno == EINTR) {
            }
            if (n == sizeof port)
                _port = port;
        }
        ::close(portPipe[0]);
    }

    pid_t _pid = -1;
    int _port = 0;
    int _status = -1;
};

} // namespace minnoc::disttest

#endif // MINNOC_TESTS_DIST_TEST_HARNESS_HPP
