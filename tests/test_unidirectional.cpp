/**
 * @file
 * Tests for unidirectional-link finalization (paper footnote 1).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/design_io.hpp"
#include "core/methodology.hpp"
#include "graph/connectivity.hpp"
#include "graph/digraph.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"
#include "util/rng.hpp"

using namespace minnoc;
using namespace minnoc::core;

namespace {

/** An intentionally asymmetric pattern: a one-way ring of messages. */
CliqueSet
oneWayRing(std::uint32_t procs)
{
    CliqueSet ks(procs);
    std::vector<Comm> comms;
    for (ProcId p = 0; p < procs; ++p)
        comms.emplace_back(p, static_cast<ProcId>((p + 1) % procs));
    ks.addClique(comms);
    return ks;
}

DesignOutcome
designUni(const CliqueSet &ks, bool unidirectional)
{
    MethodologyConfig cfg;
    cfg.partitioner.constraints.maxDegree = 5;
    cfg.finalize.unidirectional = unidirectional;
    cfg.restarts = 4;
    return runMethodology(ks, cfg);
}

/** Directed switch graph over provisioned channels. */
graph::Digraph
channelGraph(const FinalizedDesign &d)
{
    graph::Digraph g(d.numSwitches);
    for (const auto &p : d.pipes) {
        if (p.linksFwd > 0)
            g.addEdge(p.key.a, p.key.b);
        if (p.linksBwd > 0)
            g.addEdge(p.key.b, p.key.a);
    }
    return g;
}

} // namespace

TEST(Unidirectional, DuplexModeFillsBothDirections)
{
    const auto outcome = designUni(oneWayRing(8), false);
    EXPECT_FALSE(outcome.design.unidirectional);
    for (const auto &p : outcome.design.pipes) {
        EXPECT_EQ(p.linksFwd, p.links);
        EXPECT_EQ(p.linksBwd, p.links);
    }
}

TEST(Unidirectional, AsymmetricPatternProvisionsAsymmetrically)
{
    const auto outcome = designUni(oneWayRing(8), true);
    EXPECT_TRUE(outcome.design.unidirectional);
    EXPECT_TRUE(outcome.violations.empty());
    // A one-way ring should produce at least one pipe that is narrower
    // in one direction than the other (or balanced by the connectivity
    // patch — but never wider than the duplex provision).
    std::uint32_t fwdTotal = 0;
    std::uint32_t bwdTotal = 0;
    for (const auto &p : outcome.design.pipes) {
        EXPECT_LE(p.linksFwd, p.links);
        EXPECT_LE(p.linksBwd, p.links);
        EXPECT_EQ(p.links, std::max(p.linksFwd, p.linksBwd));
        fwdTotal += p.linksFwd;
        bwdTotal += p.linksBwd;
    }
    // Channels in total must not exceed the duplex equivalent.
    const auto duplex = designUni(oneWayRing(8), false);
    std::uint32_t duplexChannels = 0;
    for (const auto &p : duplex.design.pipes)
        duplexChannels += 2 * p.links;
    EXPECT_LE(fwdTotal + bwdTotal, duplexChannels);
}

TEST(Unidirectional, DirectedConnectivityHolds)
{
    for (const std::uint32_t procs : {4u, 8u, 16u}) {
        const auto outcome = designUni(oneWayRing(procs), true);
        const auto g = channelGraph(outcome.design);
        EXPECT_TRUE(graph::isStronglyConnected(g))
            << procs << "-proc ring design is not strongly connected";
    }
}

TEST(Unidirectional, FallbackRoutingSkipsMissingDirections)
{
    // Regression: the cross-pattern fallback router used to put both
    // directions of every pipe into its BFS graph, then divide by the
    // physical-link count of whichever direction BFS picked — zero for
    // the missing side of a one-way pipe (SIGFPE, hit by exploring
    // coherence traces whose designs provision asymmetric pipes).
    FinalizedDesign d;
    d.numProcs = 3;
    d.numSwitches = 3;
    d.switchProcs = {{0}, {1}, {2}};
    d.procHome = {0, 1, 2};
    d.comms.emplace_back(0, 1);
    d.routes.push_back({0, 1});
    FinalizedPipe ab; // one-way: channels 0 -> 1 only
    ab.key = PipeKey(0, 1);
    ab.links = 1;
    ab.linksFwd = 1;
    ab.fwdLink[0] = 0;
    FinalizedPipe ac;
    ac.key = PipeKey(0, 2);
    ac.links = ac.linksFwd = ac.linksBwd = 1;
    FinalizedPipe bc;
    bc.key = PipeKey(1, 2);
    bc.links = bc.linksFwd = bc.linksBwd = 1;
    d.pipes = {ab, ac, bc};
    d.unidirectional = true;

    // Fallback pairs like proc1 -> proc0 must detour via switch 2
    // instead of walking the nonexistent 1 -> 0 channel.
    const auto plan = topo::planFloor(d);
    const auto net = topo::buildFromDesign(d, plan);
    EXPECT_NO_FATAL_FAILURE(
        topo::validateRouting(*net.topo, *net.routing));
}

TEST(Unidirectional, BenchmarkDesignsStayContentionFree)
{
    trace::NasConfig cfg;
    cfg.ranks = 8;
    cfg.iterations = 1;
    for (const auto bench :
         {trace::Benchmark::CG, trace::Benchmark::MG}) {
        cfg.ranks = trace::smallConfigRanks(bench);
        const auto tr = trace::generateBenchmark(bench, cfg);
        auto ks = trace::analyzeByCall(tr);
        const auto outcome = designUni(ks, true);
        EXPECT_TRUE(outcome.violations.empty())
            << trace::benchmarkName(bench);
        EXPECT_TRUE(
            graph::isStronglyConnected(channelGraph(outcome.design)));
    }
}

TEST(Unidirectional, BuildsAndSimulates)
{
    trace::NasConfig cfg;
    cfg.ranks = 8;
    cfg.iterations = 1;
    const auto tr = trace::generateCG(cfg);
    const auto outcome = designUni(trace::analyzeByCall(tr), true);
    const auto plan = topo::planFloor(outcome.design);
    const auto net = topo::buildFromDesign(outcome.design, plan);
    EXPECT_NO_FATAL_FAILURE(
        topo::validateRouting(*net.topo, *net.routing));
    const auto res = sim::runTrace(tr, *net.topo, *net.routing);
    EXPECT_EQ(res.packetsDelivered, tr.numSends());
    EXPECT_EQ(res.deadlockRecoveries, 0u);
}

TEST(Unidirectional, SavesWireAreaOnAsymmetricPatterns)
{
    const auto uni = designUni(oneWayRing(16), true);
    const auto duplex = designUni(oneWayRing(16), false);
    const auto uniPlan = topo::planFloor(uni.design);
    const auto duplexPlan = topo::planFloor(duplex.design);
    // Half-channel accounting: the one-way ring needs roughly half the
    // wire of the duplex provision (plus the connectivity patch).
    EXPECT_LT(uniPlan.linkArea, duplexPlan.linkArea + 1);
}

TEST(Unidirectional, SurvivesDesignIoRoundTrip)
{
    const auto outcome = designUni(oneWayRing(8), true);
    std::stringstream ss;
    saveDesign(outcome.design, ss);
    const auto loaded = loadDesign(ss);
    EXPECT_TRUE(loaded.unidirectional);
    ASSERT_EQ(loaded.pipes.size(), outcome.design.pipes.size());
    for (std::size_t i = 0; i < loaded.pipes.size(); ++i) {
        EXPECT_EQ(loaded.pipes[i].linksFwd,
                  outcome.design.pipes[i].linksFwd);
        EXPECT_EQ(loaded.pipes[i].linksBwd,
                  outcome.design.pipes[i].linksBwd);
    }
}
