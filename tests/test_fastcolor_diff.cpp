/**
 * @file
 * Differential tests: the bitset Fast_Color path (clique masks, AND +
 * popcount, per-pipe dirty-bit cache) must agree exactly with the
 * original ordered-set implementation, which is kept as
 * DesignNetwork::fastColorSetReference. Randomized patterns and
 * randomized mutation sequences exercise the cache invalidation in
 * moveProc / splitSwitch / setRoute.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/design_network.hpp"
#include "util/rng.hpp"

using namespace minnoc::core;
using minnoc::Rng;

namespace {

/** Random clique set: @p phases partial permutations of @p procs. */
CliqueSet
randomCliques(std::uint32_t procs, std::uint32_t phases, std::uint64_t seed)
{
    CliqueSet ks(procs);
    Rng rng(seed);
    std::vector<ProcId> perm(procs);
    for (ProcId p = 0; p < procs; ++p)
        perm[p] = p;
    for (std::uint32_t k = 0; k < phases; ++k) {
        rng.shuffle(perm);
        std::vector<Comm> comms;
        for (ProcId p = 0; p < procs; ++p) {
            // Partial permutation: some processors stay silent.
            if (perm[p] != p && rng.chance(0.8))
                comms.emplace_back(p, perm[p]);
        }
        if (!comms.empty())
            ks.addClique(comms);
    }
    return ks;
}

/** The pipe's directional comm ids as an ordered set (oracle input). */
std::set<CommId>
asSet(const CommBitset &bits)
{
    std::set<CommId> out;
    bits.forEach([&out](CommId c) { out.insert(c); });
    return out;
}

/** Check every pipe's cached estimate against the reference oracle. */
void
expectAllPipesMatch(const DesignNetwork &net)
{
    for (const auto &key : net.pipes()) {
        const Pipe &p = net.pipe(key);
        const auto refFwd = net.fastColorSetReference(asSet(p.fwd));
        const auto refBwd = net.fastColorSetReference(asSet(p.bwd));
        EXPECT_EQ(net.fastColor(key), std::max(refFwd, refBwd))
            << "pipe " << key.a << "-" << key.b;
        const auto [fcFwd, fcBwd] = net.fastColorDirs(key);
        EXPECT_EQ(fcFwd, refFwd);
        EXPECT_EQ(fcBwd, refBwd);
        EXPECT_EQ(net.fastColorSet(p.fwd), refFwd);
        EXPECT_EQ(net.fastColorSet(p.bwd), refBwd);
    }
}

} // namespace

TEST(FastColorDiff, BitsetMatchesReferenceOnRandomSets)
{
    const CliqueSet ks = randomCliques(24, 6, 11);
    const DesignNetwork net(ks);
    Rng rng(7);
    const auto numComms = static_cast<CommId>(ks.numComms());
    for (int trial = 0; trial < 200; ++trial) {
        CommBitset bits(numComms);
        std::set<CommId> ref;
        const auto fill = rng.below(numComms + 1);
        for (std::uint64_t i = 0; i < fill; ++i) {
            const auto c = static_cast<CommId>(rng.below(numComms));
            bits.insert(c);
            ref.insert(c);
        }
        EXPECT_EQ(net.fastColorSet(bits), net.fastColorSetReference(ref));
    }
}

TEST(FastColorDiff, FastColorSetPlusMatchesMaterializedUnion)
{
    const CliqueSet ks = randomCliques(20, 5, 23);
    const DesignNetwork net(ks);
    Rng rng(3);
    const auto numComms = static_cast<CommId>(ks.numComms());
    ASSERT_GE(numComms, 2u);
    for (int trial = 0; trial < 200; ++trial) {
        CommBitset bits(numComms);
        std::set<CommId> ref;
        const auto fill = rng.below(numComms);
        for (std::uint64_t i = 0; i < fill; ++i) {
            const auto c = static_cast<CommId>(rng.below(numComms));
            bits.insert(c);
            ref.insert(c);
        }
        // Pick an extra id not already in the set.
        CommId extra;
        do {
            extra = static_cast<CommId>(rng.below(numComms));
        } while (bits.test(extra));
        ref.insert(extra);
        EXPECT_EQ(net.fastColorSetPlus(bits, extra),
                  net.fastColorSetReference(ref));
    }
}

TEST(FastColorDiff, CacheStaysCoherentUnderRandomMutations)
{
    for (const std::uint64_t seed : {1ull, 42ull, 1234ull}) {
        const CliqueSet ks = randomCliques(16, 5, seed);
        DesignNetwork net(ks);
        Rng rng(seed * 31 + 7);

        // Interleave splits, processor moves, and estimate reads so
        // dirty bits are set and cleared in many different orders.
        for (int step = 0; step < 60; ++step) {
            const auto kind = rng.below(4);
            if (kind == 0 && net.numSwitches() < 12) {
                std::vector<SwitchId> splittable;
                for (SwitchId s = 0; s < net.numSwitches(); ++s) {
                    if (net.procsOf(s).size() >= 2)
                        splittable.push_back(s);
                }
                if (!splittable.empty()) {
                    net.splitSwitch(
                        splittable[rng.below(splittable.size())], rng);
                }
            } else if (kind == 1 && net.numSwitches() >= 2) {
                const auto p =
                    static_cast<ProcId>(rng.below(net.numProcs()));
                const auto to = static_cast<SwitchId>(
                    rng.below(net.numSwitches()));
                if (net.procsOf(net.homeOf(p)).size() >= 2)
                    net.moveProc(p, to);
            } else if (kind == 2) {
                // Reads populate the cache; later writes must dirty it.
                net.totalEstimatedLinks();
                for (SwitchId s = 0; s < net.numSwitches(); ++s)
                    net.estimatedDegree(s);
            } else {
                expectAllPipesMatch(net);
            }
        }
        expectAllPipesMatch(net);
        net.checkInvariants(); // also validates cached vs recomputed
    }
}

TEST(FastColorDiff, EstimatedDegreesMatchPerSwitchQueries)
{
    const CliqueSet ks = randomCliques(18, 4, 5);
    DesignNetwork net(ks);
    Rng rng(9);
    for (int i = 0; i < 3; ++i)
        net.splitSwitch(0, rng);
    const auto bulk = net.estimatedDegrees();
    ASSERT_EQ(bulk.size(), net.numSwitches());
    for (SwitchId s = 0; s < net.numSwitches(); ++s)
        EXPECT_EQ(bulk[s], net.estimatedDegree(s));
}

TEST(FastColorDiff, CutEstimateMatchesUnionOfIncidentPipes)
{
    const CliqueSet ks = randomCliques(18, 4, 17);
    DesignNetwork net(ks);
    Rng rng(13);
    const SwitchId sj = net.splitSwitch(0, rng);
    const SwitchId sk = net.splitSwitch(0, rng);
    for (const auto &[si, other] :
         std::vector<std::pair<SwitchId, SwitchId>>{
             {0, sj}, {0, sk}, {sj, sk}}) {
        // Oracle: sorted unique union of both incidence lists.
        std::vector<PipeKey> keys = net.pipesOf(si);
        for (const auto &k : net.pipesOf(other))
            keys.push_back(k);
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
        std::uint32_t expected = 0;
        for (const auto &k : keys)
            expected += net.fastColor(k);
        EXPECT_EQ(net.cutEstimate(si, other), expected);
    }
}

TEST(FastColorDiff, StatsCountCallsAndHits)
{
    const CliqueSet ks = randomCliques(12, 3, 2);
    DesignNetwork net(ks);
    Rng rng(1);
    net.splitSwitch(0, rng);

    resetFastColorStats();
    const auto cold = net.totalEstimatedLinks();
    const auto afterCold = fastColorStats();
    EXPECT_GT(afterCold.calls, 0u);

    const auto warm = net.totalEstimatedLinks();
    const auto afterWarm = fastColorStats();
    EXPECT_EQ(cold, warm);
    // Second scan is served entirely from the per-pipe caches.
    EXPECT_EQ(afterWarm.cacheHits - afterCold.cacheHits,
              afterWarm.calls - afterCold.calls);
}
