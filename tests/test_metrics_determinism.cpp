/**
 * @file
 * Determinism of the exported observability data: the default metrics
 * JSON (timing metrics excluded) must be byte-identical across thread
 * counts and across repeated runs, because CI diffs it and the DSE
 * result cache assumes telemetry never perturbs results.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/methodology.hpp"
#include "dse/explorer.hpp"
#include "obs/metrics.hpp"
#include "obs/sim_observer.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;

namespace {

trace::Trace
cgTrace(std::uint32_t ranks)
{
    trace::NasConfig cfg;
    cfg.ranks = ranks;
    cfg.iterations = 1;
    cfg.seed = 1;
    return trace::generateBenchmark(trace::Benchmark::CG, cfg);
}

std::string
exploreMetricsJson(const trace::Trace &tr, std::uint32_t threads)
{
    obs::MetricsRegistry registry;
    dse::ExploreConfig cfg;
    cfg.grid.maxDegrees = {4, 5};
    cfg.grid.unidirectional = {0};
    cfg.grid.vcs = {2};
    cfg.threads = threads;
    cfg.useCache = false;
    cfg.metrics = &registry;
    (void)dse::explore(tr, cfg);
    return registry.toJson();
}

std::string
simulateMetricsJson(const trace::Trace &tr)
{
    const auto mesh = topo::buildMesh(tr.numRanks());
    obs::SimObserver observer;
    obs::MetricsRegistry registry;
    (void)sim::runTrace(tr, *mesh.topo, *mesh.routing, sim::SimConfig{},
                        &observer);
    observer.exportTo(registry);
    return registry.toJson();
}

std::string
methodologyMetricsJson(const trace::Trace &tr, std::uint32_t threads)
{
    obs::MetricsRegistry registry;
    core::MethodologyConfig cfg;
    cfg.partitioner.constraints.maxDegree = 5;
    cfg.partitioner.seed = 1;
    cfg.restarts = 6;
    cfg.threads = threads;
    cfg.metrics = &registry;
    (void)core::runMethodology(trace::analyzeByCall(tr), cfg);
    return registry.toJson();
}

} // namespace

TEST(MetricsDeterminism, ExploreIdenticalAcrossThreadCounts)
{
    const auto tr = cgTrace(16);
    const auto one = exploreMetricsJson(tr, 1);
    const auto four = exploreMetricsJson(tr, 4);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, four)
        << "DSE metrics JSON must be byte-identical at any --threads";
}

TEST(MetricsDeterminism, MethodologyIdenticalAcrossThreadCounts)
{
    const auto tr = cgTrace(16);
    const auto one = methodologyMetricsJson(tr, 1);
    const auto four = methodologyMetricsJson(tr, 4);
    if (obs::kEnabled)
        EXPECT_NE(one.find("methodology/restart/0/cost_curve"),
                  std::string::npos);
    EXPECT_EQ(one, four)
        << "restart telemetry must replay identically at any "
           "thread count";
}

TEST(MetricsDeterminism, SimulateIdenticalAcrossRuns)
{
    const auto tr = cgTrace(16);
    const auto a = simulateMetricsJson(tr);
    const auto b = simulateMetricsJson(tr);
    if (obs::kEnabled)
        EXPECT_NE(a.find("sim/latency"), std::string::npos);
    EXPECT_EQ(a, b)
        << "simulator metrics must be byte-identical across reruns";
}
