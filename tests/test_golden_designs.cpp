/**
 * @file
 * Paper-fidelity golden regression suite: the finalized network stats
 * (switch count, pipe count, max switch degree, color count, link and
 * channel totals) for all five NAS patterns at a fixed seed are locked
 * into tests/golden/ and diffed on every run, so perf or algorithm PRs
 * cannot silently drift the reproduced designs.
 *
 * Regeneration (after an INTENTIONAL change to design output):
 *
 *     MINNOC_REGEN_GOLDEN=1 ./build/tests/test_golden_designs
 *
 * then review the tests/golden/ diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/methodology.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;

namespace {

std::string
goldenPath(trace::Benchmark bench)
{
    return std::string(MINNOC_TESTS_DIR) + "/golden/" +
           trace::benchmarkName(bench) + ".golden";
}

/** The design the golden files snapshot: small config, fixed seed. */
core::DesignOutcome
goldenDesign(trace::Benchmark bench, std::uint32_t *ranksOut)
{
    trace::NasConfig tcfg;
    tcfg.ranks = trace::smallConfigRanks(bench);
    tcfg.iterations = 1;
    tcfg.seed = 1;
    const auto tr = trace::generateBenchmark(bench, tcfg);
    *ranksOut = tr.numRanks();

    core::MethodologyConfig cfg;
    cfg.partitioner.constraints.maxDegree = 5;
    cfg.partitioner.seed = 1;
    cfg.restarts = 6;
    cfg.threads = 1;
    return core::runMethodology(trace::analyzeByCall(tr), cfg);
}

/** Render the stats snapshot in the golden file format. */
std::string
statsSnapshot(trace::Benchmark bench, std::uint32_t ranks,
              const core::DesignOutcome &outcome)
{
    const auto &d = outcome.design;
    std::uint32_t maxDegree = 0;
    for (core::SwitchId s = 0; s < d.numSwitches; ++s)
        maxDegree = std::max(maxDegree, d.switchDegree(s));
    // "Color count": the largest per-pipe-direction channel count, i.e.
    // the maximum chromatic number the formal coloring assigned to any
    // pipe conflict graph (paper Section 3.2).
    std::uint32_t colors = 0;
    for (const auto &pipe : d.pipes)
        colors = std::max(colors, std::max(pipe.linksFwd, pipe.linksBwd));

    std::ostringstream oss;
    oss << "bench=" << trace::benchmarkName(bench) << "\n"
        << "ranks=" << ranks << "\n"
        << "switches=" << d.numSwitches << "\n"
        << "pipes=" << d.pipes.size() << "\n"
        << "max_degree=" << maxDegree << "\n"
        << "colors=" << colors << "\n"
        << "links=" << d.totalLinks() << "\n"
        << "channels=" << d.totalChannels() << "\n"
        << "constraints_met=" << (outcome.constraintsMet ? 1 : 0) << "\n"
        << "violations=" << outcome.violations.size() << "\n";
    return oss.str();
}

class GoldenDesigns : public ::testing::TestWithParam<trace::Benchmark>
{
};

} // namespace

TEST_P(GoldenDesigns, MatchesSnapshot)
{
    const auto bench = GetParam();
    std::uint32_t ranks = 0;
    const auto outcome = goldenDesign(bench, &ranks);
    const auto actual = statsSnapshot(bench, ranks, outcome);
    const auto path = goldenPath(bench);

    if (std::getenv("MINNOC_REGEN_GOLDEN") != nullptr) {
        std::ofstream os(path);
        ASSERT_TRUE(os) << "cannot write " << path;
        os << actual;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " — regenerate with MINNOC_REGEN_GOLDEN=1 "
                    << "./build/tests/test_golden_designs";
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto expected = buffer.str();

    EXPECT_EQ(expected, actual)
        << "finalized design stats for " << trace::benchmarkName(bench)
        << " drifted from tests/golden/. If the change is intentional, "
        << "regenerate with MINNOC_REGEN_GOLDEN=1 "
        << "./build/tests/test_golden_designs and review the diff.";
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, GoldenDesigns,
    ::testing::Values(trace::Benchmark::BT, trace::Benchmark::CG,
                      trace::Benchmark::FFT, trace::Benchmark::MG,
                      trace::Benchmark::SP),
    [](const ::testing::TestParamInfo<trace::Benchmark> &info) {
        return trace::benchmarkName(info.param);
    });

TEST(GoldenDesigns, PerturbationFailsLoudly)
{
    // Self-test of the diff: a one-switch perturbation of the snapshot
    // must not compare equal to the golden content, so a genuinely
    // drifted design can never slip through the string comparison.
    std::uint32_t ranks = 0;
    const auto outcome = goldenDesign(trace::Benchmark::CG, &ranks);
    auto perturbed = outcome;
    perturbed.design.numSwitches += 1;
    perturbed.design.switchProcs.emplace_back();

    const auto clean =
        statsSnapshot(trace::Benchmark::CG, ranks, outcome);
    const auto dirty =
        statsSnapshot(trace::Benchmark::CG, ranks, perturbed);
    EXPECT_NE(clean, dirty);
    EXPECT_NE(dirty.find("switches="), std::string::npos);
}
