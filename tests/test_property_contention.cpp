/**
 * @file
 * Property-based contention tests: ~200 fixed-seed random well-behaved
 * communication patterns (phases of random partial permutations, paper
 * Definition 3) checked against the invariants the methodology's
 * correctness rests on:
 *
 *  - the maximum-clique-set reduction (Definition 5) never changes the
 *    potential contention relation (Definition 4);
 *  - the explicit contention set is exactly the symmetric closure of
 *    clique co-occurrence (clique-cover consistency);
 *  - Theorem 1 holds on every generated design: no two contending
 *    communications share a link channel, and each pipe direction
 *    provisions at least as many links as any single clique routes
 *    through it (the clique lower bound that makes the coloring tight).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <vector>

#include "core/methodology.hpp"
#include "core/verify.hpp"
#include "util/rng.hpp"

using namespace minnoc;
using namespace minnoc::core;

namespace {

constexpr int kPatterns = 200;

/**
 * Random well-behaved pattern: each phase is a random partial
 * permutation, so within a clique every processor sends at most once
 * and receives at most once.
 */
CliqueSet
randomPattern(std::uint64_t seed, std::uint32_t *procsOut)
{
    Rng rng(seed * 0x9e3779b9ULL + 1);
    const auto procs =
        4 + static_cast<std::uint32_t>(rng.below(8)); // 4..11
    const auto phases =
        1 + static_cast<std::uint32_t>(rng.below(4)); // 1..4
    *procsOut = procs;

    CliqueSet ks(procs);
    for (std::uint32_t k = 0; k < phases; ++k) {
        std::vector<ProcId> perm(procs);
        for (ProcId p = 0; p < procs; ++p)
            perm[p] = p;
        rng.shuffle(perm);
        std::vector<Comm> comms;
        for (ProcId p = 0; p < procs; ++p) {
            if (perm[p] != p && rng.chance(0.75))
                comms.emplace_back(p, perm[p]);
        }
        if (!comms.empty())
            ks.addClique(comms);
    }
    if (ks.numCliques() == 0)
        ks.addClique({Comm(0, 1), Comm(2, 3)});
    return ks;
}

/** Naive contention relation recomputed directly from the cliques. */
std::set<std::pair<CommId, CommId>>
naiveContend(const CliqueSet &ks)
{
    std::set<std::pair<CommId, CommId>> pairs;
    for (const auto &clique : ks.cliques()) {
        for (std::size_t i = 0; i < clique.comms.size(); ++i) {
            for (std::size_t j = i + 1; j < clique.comms.size(); ++j) {
                const auto a = clique.comms[i];
                const auto b = clique.comms[j];
                pairs.emplace(std::min(a, b), std::max(a, b));
            }
        }
    }
    return pairs;
}

} // namespace

TEST(PropertyContention, PatternsAreWellBehaved)
{
    // The generator itself must uphold Definition 3: within a clique no
    // processor sends twice or receives twice.
    for (int seed = 1; seed <= kPatterns; ++seed) {
        std::uint32_t procs = 0;
        const auto ks = randomPattern(seed, &procs);
        for (const auto &clique : ks.cliques()) {
            std::set<ProcId> srcs;
            std::set<ProcId> dsts;
            for (const auto c : clique.comms) {
                const auto &comm = ks.comm(c);
                EXPECT_LT(comm.src, procs);
                EXPECT_LT(comm.dst, procs);
                EXPECT_NE(comm.src, comm.dst);
                EXPECT_TRUE(srcs.insert(comm.src).second)
                    << "seed " << seed << ": duplicate source";
                EXPECT_TRUE(dsts.insert(comm.dst).second)
                    << "seed " << seed << ": duplicate destination";
            }
        }
    }
}

TEST(PropertyContention, ReductionPreservesContendRelation)
{
    for (int seed = 1; seed <= kPatterns; ++seed) {
        std::uint32_t procs = 0;
        const auto ks = randomPattern(seed, &procs);
        auto reduced = ks;
        reduced.reduceToMaximum();
        ASSERT_EQ(ks.numComms(), reduced.numComms());
        EXPECT_LE(reduced.numCliques(), ks.numCliques());

        for (CommId a = 0; a < ks.numComms(); ++a) {
            for (CommId b = a + 1; b < ks.numComms(); ++b) {
                EXPECT_EQ(ks.contend(a, b), reduced.contend(a, b))
                    << "seed " << seed << " comms " << a << "," << b;
            }
        }
    }
}

TEST(PropertyContention, ContentionSetMatchesCliqueCover)
{
    for (int seed = 1; seed <= kPatterns; ++seed) {
        std::uint32_t procs = 0;
        const auto ks = randomPattern(seed, &procs);
        const auto expected = naiveContend(ks);

        // contend() agrees with direct clique co-occurrence.
        for (CommId a = 0; a < ks.numComms(); ++a) {
            for (CommId b = a + 1; b < ks.numComms(); ++b) {
                EXPECT_EQ(ks.contend(a, b), expected.count({a, b}) > 0)
                    << "seed " << seed << " comms " << a << "," << b;
            }
        }

        // The explicit 4-tuple set is the symmetric closure of the same
        // relation expressed on endpoint pairs.
        std::set<std::array<ProcId, 4>> tuples;
        for (const auto &t : ks.contentionSet())
            tuples.insert(t);
        for (const auto &[a, b] : expected) {
            const auto &ca = ks.comm(a);
            const auto &cb = ks.comm(b);
            EXPECT_TRUE(tuples.count({ca.src, ca.dst, cb.src, cb.dst}))
                << "seed " << seed;
            EXPECT_TRUE(tuples.count({cb.src, cb.dst, ca.src, ca.dst}))
                << "seed " << seed << " (symmetric closure)";
        }
        EXPECT_EQ(tuples.size(), expected.size() * 2) << "seed " << seed;
    }
}

TEST(PropertyContention, Theorem1HoldsOnEveryDesign)
{
    for (int seed = 1; seed <= kPatterns; ++seed) {
        std::uint32_t procs = 0;
        const auto ks = randomPattern(seed, &procs);

        MethodologyConfig cfg;
        cfg.partitioner.constraints.maxDegree = 6;
        cfg.partitioner.seed = 1;
        cfg.restarts = 2;
        cfg.threads = 1;
        const auto outcome = runMethodology(ks, cfg);

        // Theorem 1: C intersect R is empty, independent of
        // feasibility of the degree constraint.
        EXPECT_TRUE(outcome.violations.empty()) << "seed " << seed;
        EXPECT_TRUE(
            checkContentionFree(outcome.design, ks).empty())
            << "seed " << seed;

        // Clique lower bound: each pipe direction provisions at least
        // as many links as any one clique routes through it, and the
        // clique's members occupy pairwise-distinct link indices.
        for (const auto &clique : ks.cliques()) {
            for (const auto &pipe : outcome.design.pipes) {
                std::set<std::uint32_t> fwd;
                std::set<std::uint32_t> bwd;
                for (const auto c : clique.comms) {
                    if (auto it = pipe.fwdLink.find(c);
                        it != pipe.fwdLink.end())
                        EXPECT_TRUE(fwd.insert(it->second).second)
                            << "seed " << seed
                            << ": contending comms share a fwd link";
                    if (auto it = pipe.bwdLink.find(c);
                        it != pipe.bwdLink.end())
                        EXPECT_TRUE(bwd.insert(it->second).second)
                            << "seed " << seed
                            << ": contending comms share a bwd link";
                }
                EXPECT_GE(pipe.linksFwd, fwd.size()) << "seed " << seed;
                EXPECT_GE(pipe.linksBwd, bwd.size()) << "seed " << seed;
            }
        }
    }
}
