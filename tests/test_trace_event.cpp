/**
 * @file
 * Chrome trace-event exporter tests: the emitted JSON must satisfy the
 * trace-event schema (Perfetto / chrome://tracing object format) both
 * for hand-built logs and for a log produced by a real simulator run
 * through the SimObserver.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "obs/sim_observer.hpp"
#include "obs/trace_event.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "trace/nas_generators.hpp"
#include "util/json.hpp"

using namespace minnoc;

namespace {

/**
 * Assert @p dump is schema-valid trace-event JSON: a top-level object
 * with a "traceEvents" array whose entries all carry ph/name/pid/ts,
 * where "X" events carry a non-negative dur and "C" events a numeric
 * args.value, and complete/counter timestamps are non-decreasing.
 */
void
expectValidTraceEventJson(const std::string &dump)
{
    const auto parsed = json::parse(dump);
    ASSERT_TRUE(parsed.has_value()) << dump.substr(0, 400);
    ASSERT_TRUE(parsed->isObject());
    const auto *events = parsed->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    const std::set<std::string> known = {"X", "C", "M", "B", "E", "i"};
    double lastTs = -1.0;
    for (const auto &e : events->asArray()) {
        ASSERT_TRUE(e.isObject());
        const auto *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        ASSERT_TRUE(ph->isString());
        EXPECT_TRUE(known.count(ph->asString()))
            << "unknown phase " << ph->asString();
        ASSERT_NE(e.find("name"), nullptr);
        EXPECT_TRUE(e.find("name")->isString());
        ASSERT_NE(e.find("pid"), nullptr);
        EXPECT_TRUE(e.find("pid")->isNumber());
        ASSERT_NE(e.find("ts"), nullptr);
        EXPECT_TRUE(e.find("ts")->isNumber());

        if (ph->asString() == "X") {
            const auto *dur = e.find("dur");
            ASSERT_NE(dur, nullptr);
            EXPECT_TRUE(dur->isNumber());
            EXPECT_GE(dur->asNumber(), 0.0);
        }
        if (ph->asString() == "C") {
            const auto *cargs = e.find("args");
            ASSERT_NE(cargs, nullptr);
            const auto *value = cargs->find("value");
            ASSERT_NE(value, nullptr);
            EXPECT_TRUE(value->isNumber());
        }
        if (ph->asString() != "M") {
            EXPECT_GE(e.find("ts")->asNumber(), lastTs)
                << "events not time-sorted";
            lastTs = e.find("ts")->asNumber();
        }
    }
}

} // namespace

TEST(TraceEventLog, HandBuiltLogIsSchemaValid)
{
    obs::TraceEventLog log;
    log.processName(obs::kPidSim, "proc \"quoted\"\n");
    log.threadName(obs::kPidSim, 3, "worker");
    log.complete("spanB", obs::kPidSim, 3, 200, 50);
    log.complete("spanA", obs::kPidSim, 3, 100, 25,
                 "\"detail\": 7");
    log.counter("occupancy", obs::kPidSim, 150, 42.5);
    EXPECT_EQ(log.size(), 5u);
    expectValidTraceEventJson(log.toJson());
}

TEST(TraceEventLog, EventsSortedByTimestamp)
{
    obs::TraceEventLog log;
    log.complete("late", 1, 0, 300, 10);
    log.complete("early", 1, 0, 10, 10);
    log.counter("c", 1, 100, 1.0);
    const auto parsed = json::parse(log.toJson());
    ASSERT_TRUE(parsed.has_value());
    const auto &events = parsed->find("traceEvents")->asArray();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].find("name")->asString(), "early");
    EXPECT_EQ(events[1].find("name")->asString(), "c");
    EXPECT_EQ(events[2].find("name")->asString(), "late");
}

TEST(TraceEventLog, NegativeDurationClampedToZero)
{
    obs::TraceEventLog log;
    log.complete("span", 1, 0, 100, -5);
    const auto parsed = json::parse(log.toJson());
    ASSERT_TRUE(parsed.has_value());
    const auto &events = parsed->find("traceEvents")->asArray();
    EXPECT_EQ(events[0].find("dur")->asNumber(), 0.0);
}

TEST(TraceEventLog, SimulatorRunProducesLoadableTrace)
{
    // The acceptance path: a real NAS-pattern simulation exported
    // through the observer must yield a valid trace with epoch spans
    // and occupancy counters on the simulator track.
    if (!obs::kEnabled)
        GTEST_SKIP() << "instrumentation compiled out (MINNOC_OBS=OFF)";
    trace::NasConfig cfg;
    cfg.ranks = 16;
    cfg.iterations = 1;
    cfg.seed = 1;
    const auto tr = trace::generateBenchmark(trace::Benchmark::CG, cfg);
    const auto net = topo::buildMesh(tr.numRanks());

    obs::SimObserver observer;
    sim::runTrace(tr, *net.topo, *net.routing, sim::SimConfig{},
                  &observer);
    ASSERT_GT(observer.epochCount(), 0u);

    obs::TraceEventLog log;
    observer.exportTrace(log);
    const auto dump = log.toJson();
    expectValidTraceEventJson(dump);
    EXPECT_NE(dump.find("\"epoch\""), std::string::npos);
    EXPECT_NE(dump.find("flits_in_network"), std::string::npos);
}

TEST(SimObserver, EpochDoublingBoundsSamples)
{
    // Feed a long synthetic run: retained epochs must stay under the
    // cap while the period doubles, and the boundaries stay ordered.
    obs::SimObserver observer(/*epochCycles=*/4, /*sampleCap=*/16);
    std::vector<std::uint64_t> linkFlits(3, 0);
    std::uint64_t flits = 0;
    for (std::int64_t now = 1; now <= 100000; ++now) {
        linkFlits[now % 3] += 1;
        flits = now % 7;
        observer.onStep(now, flits, linkFlits);
    }
    EXPECT_LE(observer.epochCount(), 16u);
    EXPECT_GT(observer.epochCycles(), 4);

    obs::MetricsRegistry reg;
    obs::SimObserver::FinalCounters fc;
    observer.finish(fc, 100001, flits, linkFlits);
    observer.exportTo(reg);
    const auto dump = reg.toJson();
    EXPECT_NE(dump.find("sim/occupancy"), std::string::npos);
    EXPECT_NE(dump.find("sim/link/0/util"), std::string::npos);
    EXPECT_TRUE(json::parse(dump).has_value());
}
