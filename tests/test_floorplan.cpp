/**
 * @file
 * Unit tests for the tile floorplanner and area model.
 */

#include <gtest/gtest.h>

#include "core/methodology.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::topo;

TEST(GridDims, MostSquareFactorizations)
{
    EXPECT_EQ(gridDims(16), (std::pair<std::uint32_t, std::uint32_t>{4, 4}));
    EXPECT_EQ(gridDims(9), (std::pair<std::uint32_t, std::uint32_t>{3, 3}));
    EXPECT_EQ(gridDims(8), (std::pair<std::uint32_t, std::uint32_t>{4, 2}));
    EXPECT_EQ(gridDims(12),
              (std::pair<std::uint32_t, std::uint32_t>{4, 3}));
    EXPECT_EQ(gridDims(1), (std::pair<std::uint32_t, std::uint32_t>{1, 1}));
}

TEST(GridDims, PrimeFallsBackToCeilGrid)
{
    const auto [w, h] = gridDims(7);
    EXPECT_GE(static_cast<std::uint64_t>(w) * h, 7u);
}

TEST(Areas, MeshReferenceValues)
{
    // 4x4 mesh: 16 switches, 24 unit-area connections.
    EXPECT_EQ(meshAreas(16),
              (std::pair<std::uint32_t, std::uint32_t>{16, 24}));
    // 3x3: 12 connections.
    EXPECT_EQ(meshAreas(9),
              (std::pair<std::uint32_t, std::uint32_t>{9, 12}));
    // 4x2: 10 connections.
    EXPECT_EQ(meshAreas(8),
              (std::pair<std::uint32_t, std::uint32_t>{8, 10}));
}

TEST(Areas, TorusDoublesMeshLinkArea)
{
    // Folded torus: 2 * w * h connections of area 2.
    const auto [sw16, lk16] = torusAreas(16);
    EXPECT_EQ(sw16, 16u);
    EXPECT_EQ(lk16, 64u);
    const auto [swM, lkM] = meshAreas(16);
    (void)swM;
    EXPECT_GE(lk16, 2 * lkM);
}

TEST(Manhattan, Distance)
{
    EXPECT_EQ(manhattan(GridPoint{0, 0}, GridPoint{3, 4}), 7u);
    EXPECT_EQ(manhattan(GridPoint{2, 2}, GridPoint{2, 2}), 0u);
    EXPECT_EQ(manhattan(GridPoint{-1, 0}, GridPoint{1, 0}), 2u);
}

namespace {

core::DesignOutcome
cgDesign(std::uint32_t ranks)
{
    trace::NasConfig cfg;
    cfg.ranks = ranks;
    cfg.iterations = 1;
    const auto tr = trace::generateCG(cfg);
    const auto ks = trace::analyzeByCall(tr);
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    return core::runMethodology(ks, mcfg);
}

} // namespace

TEST(Floorplan, PlacementIsValid)
{
    const auto outcome = cgDesign(16);
    const auto plan = planFloor(outcome.design);
    EXPECT_EQ(plan.procTile.size(), 16u);
    EXPECT_EQ(plan.switchCorner.size(), outcome.design.numSwitches);
    EXPECT_EQ(plan.switchArea, outcome.design.numSwitches);

    // Tiles are distinct and within the grid.
    std::set<std::pair<int, int>> seen;
    for (const auto &tile : plan.procTile) {
        EXPECT_GE(tile.x, 0);
        EXPECT_LT(tile.x, static_cast<int>(plan.tilesX));
        EXPECT_GE(tile.y, 0);
        EXPECT_LT(tile.y, static_cast<int>(plan.tilesY));
        EXPECT_TRUE(seen.insert({tile.x, tile.y}).second);
    }
}

TEST(Floorplan, GeneratedBeatsMeshAreas)
{
    // The headline Figure-7 property: the generated CG network uses
    // fewer switches and less link area than the mesh.
    const auto outcome = cgDesign(16);
    const auto plan = planFloor(outcome.design);
    const auto [meshSw, meshLk] = meshAreas(16);
    EXPECT_LT(plan.switchArea, meshSw);
    EXPECT_LT(plan.linkArea + plan.procLinkArea, meshLk);
}

TEST(Floorplan, DeterministicForSeed)
{
    const auto outcome = cgDesign(8);
    FloorplanConfig cfg;
    cfg.seed = 5;
    const auto a = planFloor(outcome.design, cfg);
    const auto b = planFloor(outcome.design, cfg);
    EXPECT_EQ(a.linkArea, b.linkArea);
    EXPECT_EQ(a.procLinkArea, b.procLinkArea);
    for (std::size_t i = 0; i < a.procTile.size(); ++i)
        EXPECT_EQ(a.procTile[i], b.procTile[i]);
}

TEST(Floorplan, SwitchDistanceHasUnitFloor)
{
    const auto outcome = cgDesign(8);
    const auto plan = planFloor(outcome.design);
    for (core::SwitchId a = 0; a < outcome.design.numSwitches; ++a) {
        for (core::SwitchId b = 0; b < outcome.design.numSwitches; ++b)
            EXPECT_GE(plan.switchDistance(a, b), 1u);
    }
}

TEST(Floorplan, ProcDistanceZeroWhenCornerAdjacent)
{
    const auto outcome = cgDesign(8);
    const auto plan = planFloor(outcome.design);
    // The annealer should co-locate most processors with their switch;
    // proc link area must at least stay small relative to proc count.
    EXPECT_LE(plan.procLinkArea, outcome.design.numProcs);
}
