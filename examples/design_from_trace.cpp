/**
 * @file
 * Design a network from an execution-trace file.
 *
 * Usage:
 *   design_from_trace [trace-file] [max-degree]
 *
 * Without arguments the example writes a BT-9 trace to a temporary
 * file first, so it doubles as a demonstration of the trace text
 * format. The trace is loaded back, analyzed into contention periods,
 * fed through the methodology, and the resulting network is described,
 * floorplanned and simulated against the same trace.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/methodology.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;

namespace {

std::string
writeDemoTrace()
{
    trace::NasConfig cfg;
    cfg.ranks = 9;
    cfg.iterations = 2;
    const auto tr = trace::generateBT(cfg);
    const std::string path = "/tmp/minnoc_demo_bt9.trace";
    std::ofstream out(path);
    tr.save(out);
    std::printf("wrote demo trace to %s (%zu sends)\n", path.c_str(),
                tr.numSends());
    return path;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string path = argc > 1 ? argv[1] : writeDemoTrace();
    const std::uint32_t maxDegree =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 5;

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    const trace::Trace tr = trace::Trace::load(in);
    std::printf("loaded '%s': %u ranks, %zu messages, %u call sites\n",
                tr.name().c_str(), tr.numRanks(), tr.numSends(),
                tr.numCalls());

    // Contention periods via the paper's by-call analysis.
    core::CliqueSet cliques = trace::analyzeByCall(tr);
    const auto removed = cliques.reduceToMaximum();
    std::printf("%zu contention periods (%zu dominated removed), "
                "%zu distinct comms\n",
                cliques.numCliques(), removed, cliques.numComms());

    // Run the methodology.
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = maxDegree;
    const auto outcome = core::runMethodology(cliques, mcfg);
    std::printf("design: %s\n", outcome.summary().c_str());
    std::printf("%s", outcome.design.toString().c_str());

    // Floorplan + area report.
    const auto plan = topo::planFloor(outcome.design);
    const auto [meshSw, meshLk] = topo::meshAreas(tr.numRanks());
    std::printf("area vs %ux mesh: switches %.0f%%, links %.0f%%\n",
                tr.numRanks(),
                100.0 * plan.switchArea / meshSw,
                100.0 * (plan.linkArea + plan.procLinkArea) / meshLk);

    // Simulate the trace on the generated network and on the mesh.
    const auto gen = topo::buildFromDesign(outcome.design, plan);
    const auto mesh = topo::buildMesh(tr.numRanks());
    const auto rg = sim::runTrace(tr, *gen.topo, *gen.routing);
    const auto rm = sim::runTrace(tr, *mesh.topo, *mesh.routing);
    std::printf("simulated exec cycles: generated %lld, mesh %lld "
                "(%.1f%% speedup)\n",
                static_cast<long long>(rg.execTime),
                static_cast<long long>(rm.execTime),
                100.0 * (static_cast<double>(rm.execTime) /
                             static_cast<double>(rg.execTime) -
                         1.0));
    return 0;
}
