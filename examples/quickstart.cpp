/**
 * @file
 * Quickstart: the full pipeline on the paper's flagship case (CG, 16
 * processors, max node degree 5).
 *
 *   1. synthesize a CG execution trace,
 *   2. extract the communication clique set (contention periods),
 *   3. run the design methodology to generate a minimal topology,
 *   4. verify Theorem 1 (contention-freedom),
 *   5. floorplan it and compare area against mesh/torus, and
 *   6. simulate the trace on crossbar / mesh / torus / generated
 *      networks and compare execution and communication time.
 */

#include <cstdio>

#include "core/methodology.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;

int
main()
{
    // 1. Synthesize the CG trace for 16 ranks.
    trace::NasConfig ncfg;
    ncfg.ranks = 16;
    ncfg.iterations = 3;
    const trace::Trace tr = trace::generateCG(ncfg);
    std::printf("trace: %s, %u ranks, %zu messages, %.1f KB total\n",
                tr.name().c_str(), tr.numRanks(), tr.numSends(),
                static_cast<double>(tr.totalSendBytes()) / 1024.0);

    // 2. Extract contention periods (the paper's by-call analysis).
    core::CliqueSet cliques = trace::analyzeByCall(tr);
    std::printf("pattern: %zu distinct comms, %zu contention periods "
                "(max clique %zu)\n",
                cliques.numComms(), cliques.numCliques(),
                cliques.maxCliqueSize());

    // 3. Generate a minimal low-contention network, degree <= 5.
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    const core::DesignOutcome outcome = core::runMethodology(cliques, mcfg);
    std::printf("generated: %s\n", outcome.summary().c_str());
    std::printf("%s", outcome.design.toString().c_str());

    // 4. Theorem 1: the design should be contention-free for CG.
    if (outcome.violations.empty()) {
        std::printf("Theorem 1 holds: C intersect R is empty\n");
    } else {
        std::printf("WARNING: %zu residual contention pairs\n",
                    outcome.violations.size());
    }

    // 5. Floorplan and area comparison.
    const topo::Floorplan plan = topo::planFloor(outcome.design);
    const auto [meshSw, meshLk] = topo::meshAreas(16);
    const auto [torusSw, torusLk] = topo::torusAreas(16);
    std::printf("area (switch, link): generated (%u, %u)  mesh (%u, %u)  "
                "torus (%u, %u)\n",
                plan.switchArea, plan.linkArea + plan.procLinkArea, meshSw,
                meshLk, torusSw, torusLk);

    // 6. Simulate on the four networks.
    const auto generated = topo::buildFromDesign(outcome.design, plan);
    const auto crossbar = topo::buildCrossbar(16);
    const auto mesh = topo::buildMesh(16);
    const auto torus = topo::buildTorus(16);

    struct Row
    {
        const char *name;
        const topo::BuiltNetwork *net;
    };
    const Row rows[] = {{"crossbar", &crossbar},
                        {"mesh", &mesh},
                        {"torus", &torus},
                        {"generated", &generated}};

    std::printf("%-10s %14s %14s %10s\n", "network", "exec cycles",
                "comm cycles", "deadlocks");
    for (const auto &row : rows) {
        const sim::SimResult res =
            sim::runTrace(tr, *row.net->topo, *row.net->routing);
        std::printf("%-10s %14lld %14.0f %10u\n", row.name,
                    static_cast<long long>(res.execTime),
                    res.commTimeMean(), res.deadlockRecoveries);
    }
    return 0;
}
