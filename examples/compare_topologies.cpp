/**
 * @file
 * Compare every topology on one benchmark.
 *
 * Usage:
 *   compare_topologies [BT|CG|FFT|MG|SP] [ranks] [iterations]
 *
 * Runs the chosen benchmark trace on crossbar, mesh, folded torus and
 * the methodology-generated network, reporting execution time,
 * communication time, average packet latency and resource areas — the
 * per-benchmark slice of the paper's Figures 7 and 8.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/methodology.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;

int
main(int argc, char **argv)
{
    const auto bench = trace::benchmarkFromName(argc > 1 ? argv[1] : "CG");
    trace::NasConfig cfg;
    cfg.ranks = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2]))
                         : trace::largeConfigRanks(bench);
    cfg.iterations =
        argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 3;

    const auto tr = trace::generateBenchmark(bench, cfg);
    std::printf("%s on %u ranks: %zu messages, %.1f KB payload, %u "
                "call sites\n",
                tr.name().c_str(), cfg.ranks, tr.numSends(),
                static_cast<double>(tr.totalSendBytes()) / 1024.0,
                tr.numCalls());

    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    const auto outcome =
        core::runMethodology(trace::analyzeByCall(tr), mcfg);
    const auto plan = topo::planFloor(outcome.design);
    std::printf("generated: %s\n", outcome.summary().c_str());

    const auto generated = topo::buildFromDesign(outcome.design, plan);
    const auto crossbar = topo::buildCrossbar(cfg.ranks);
    const auto mesh = topo::buildMesh(cfg.ranks);
    const auto torus = topo::buildTorus(cfg.ranks);

    const auto [meshSw, meshLk] = topo::meshAreas(cfg.ranks);
    const auto [torusSw, torusLk] = topo::torusAreas(cfg.ranks);

    struct Row
    {
        const char *name;
        const topo::BuiltNetwork *net;
        std::uint32_t switchArea;
        std::uint32_t linkArea;
    };
    const Row rows[] = {
        {"crossbar", &crossbar, 1, cfg.ranks},
        {"mesh", &mesh, meshSw, meshLk},
        {"torus", &torus, torusSw, torusLk},
        {"generated", &generated, plan.switchArea,
         plan.linkArea + plan.procLinkArea},
    };

    std::printf("\n%-10s %12s %12s %10s %9s %9s %9s\n", "network",
                "exec cycles", "comm cycles", "pkt lat", "sw area",
                "lnk area", "deadlk");
    double baseline = 0.0;
    for (const auto &row : rows) {
        const auto res = sim::runTrace(tr, *row.net->topo,
                                       *row.net->routing);
        if (baseline == 0.0)
            baseline = static_cast<double>(res.execTime);
        std::printf("%-10s %12lld %12.0f %10.1f %9u %9u %9u\n",
                    row.name, static_cast<long long>(res.execTime),
                    res.commTimeMean(), res.avgPacketLatency,
                    row.switchArea, row.linkArea,
                    res.deadlockRecoveries);
    }
    std::printf("\n(first row = non-blocking crossbar reference)\n");
    return 0;
}
