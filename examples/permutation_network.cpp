/**
 * @file
 * Application-specific permutation network (the paper's introduction
 * motivates encryption hardware built on bit permutations).
 *
 * A 16-engine pipeline applies three fixed permutation rounds — a
 * perfect shuffle, a bit-reversal and a butterfly — each round being
 * one contention period (the rounds never overlap in time). A general
 * non-blocking network for *all* permutations would be a crossbar; the
 * methodology instead finds a minimal topology that supports exactly
 * these three permutations contention-free, which is the paper's
 * "application-specific permutations" use case.
 */

#include <cstdio>
#include <vector>

#include "core/methodology.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"

using namespace minnoc;

namespace {

constexpr std::uint32_t kBits = 4;
constexpr std::uint32_t kEngines = 1u << kBits;

/** Rotate-left of the engine index bits: the perfect shuffle. */
core::ProcId
shuffle(core::ProcId i)
{
    return static_cast<core::ProcId>(
        ((i << 1) | (i >> (kBits - 1))) & (kEngines - 1));
}

/** Reverse the engine index bits. */
core::ProcId
bitReversal(core::ProcId i)
{
    core::ProcId out = 0;
    for (std::uint32_t b = 0; b < kBits; ++b) {
        if (i & (1u << b))
            out |= 1u << (kBits - 1 - b);
    }
    return out;
}

/** Butterfly: swap the top and bottom index bits. */
core::ProcId
butterfly(core::ProcId i)
{
    const std::uint32_t hi = (i >> (kBits - 1)) & 1u;
    const std::uint32_t lo = i & 1u;
    core::ProcId out = i & ~((1u << (kBits - 1)) | 1u);
    out |= lo << (kBits - 1);
    out |= hi;
    return out;
}

std::vector<core::Comm>
permutationComms(core::ProcId (*perm)(core::ProcId))
{
    std::vector<core::Comm> comms;
    for (core::ProcId i = 0; i < kEngines; ++i) {
        const auto target = perm(i);
        if (target != i)
            comms.emplace_back(i, target);
    }
    return comms;
}

} // namespace

int
main()
{
    // The communication requirement: three permutations, one clique
    // each (they execute in disjoint pipeline stages).
    core::CliqueSet cliques(kEngines);
    cliques.addClique(permutationComms(&shuffle));
    cliques.addClique(permutationComms(&bitReversal));
    cliques.addClique(permutationComms(&butterfly));
    std::printf("requirement: %zu permutation rounds, %zu distinct "
                "transfers\n",
                cliques.numCliques(), cliques.numComms());

    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    const auto outcome = core::runMethodology(cliques, mcfg);
    std::printf("design: %s\n", outcome.summary().c_str());
    std::printf("%s", outcome.design.toString().c_str());

    if (outcome.violations.empty()) {
        std::printf("all three permutations are provably "
                    "contention-free on this network\n");
    }

    // Compare resources with the general-purpose alternatives.
    const auto plan = topo::planFloor(outcome.design);
    const auto [meshSw, meshLk] = topo::meshAreas(kEngines);
    std::printf("area: %u switches / %u link units "
                "(mesh: %u / %u; crossbar: 1 x %u-port megaswitch)\n",
                plan.switchArea, plan.linkArea + plan.procLinkArea,
                meshSw, meshLk, kEngines);

    // Drive each permutation round through the network back to back.
    trace::Trace tr("permutations", kEngines);
    std::uint32_t call = 0;
    for (const auto perm : {&shuffle, &bitReversal, &butterfly}) {
        for (const auto &c : permutationComms(*perm))
            tr.push(c.src, trace::TraceOp::send(c.dst, 4096, call));
        for (const auto &c : permutationComms(*perm))
            tr.push(c.dst, trace::TraceOp::recv(c.src, 4096, call));
        ++call;
    }
    const auto gen = topo::buildFromDesign(outcome.design, plan);
    const auto xbar = topo::buildCrossbar(kEngines);
    const auto rg = sim::runTrace(tr, *gen.topo, *gen.routing);
    const auto rx = sim::runTrace(tr, *xbar.topo, *xbar.routing);
    std::printf("three rounds: generated %lld cycles vs crossbar %lld "
                "cycles (%.1f%% slower, at a fraction of the cost)\n",
                static_cast<long long>(rg.execTime),
                static_cast<long long>(rx.execTime),
                100.0 * (static_cast<double>(rg.execTime) /
                             static_cast<double>(rx.execTime) -
                         1.0));
    return 0;
}
