/**
 * @file
 * Load + chaos harness for the `minnoc serve` daemon.
 *
 * Connects to a running daemon and hammers it from many client
 * threads with a seeded mix of traffic: valid design/explore/ping
 * requests, coordinator-style dse_job submissions (valid and with a
 * missing signature), malformed JSON, garbage bytes, oversized lines,
 * slow writers dribbling a request byte by byte, mid-request
 * disconnects, and tiny deadlines — optionally while a saboteur
 * thread flips bytes in the daemon's on-disk cache records. Afterwards it runs a
 * single-flight wave (N identical concurrent submissions) and checks
 * the daemon's own computation counter moved by exactly one, then
 * asserts the daemon is fully quiesced (queue empty, nothing in
 * flight) and still answering.
 *
 * Every outcome is accounted; the run FAILS (nonzero exit) on any
 * internal error, any missing response to a well-formed request, any
 * dedup or quiescence violation. The JSON artifact records
 * throughput, client-side latency quantiles, the outcome mix and the
 * assertion results.
 *
 *   serve_chaos --socket /tmp/minnoc.sock [--clients 8]
 *               [--requests 600] [--seed 1] [--corrupt-cache DIR]
 *               [--out chaos.json]
 */

#include <atomic>
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "dse/explorer.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "trace/nas_generators.hpp"
#include "util/json.hpp"

using namespace minnoc;

namespace {

struct Options
{
    std::string socketPath;
    int port = -1;
    unsigned clients = 8;
    unsigned requests = 600; ///< total across all clients
    std::uint64_t seed = 1;
    std::string corruptCacheDir;
    std::string outPath;
};

struct Tally
{
    std::mutex mutex;
    std::map<std::string, std::uint64_t> outcomes;
    std::vector<std::uint64_t> latenciesUs; ///< well-formed requests

    void
    count(const std::string &outcome)
    {
        const std::scoped_lock lock(mutex);
        ++outcomes[outcome];
    }

    void
    latency(std::uint64_t us)
    {
        const std::scoped_lock lock(mutex);
        latenciesUs.push_back(us);
    }
};

std::int64_t
nowUs()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
traceText(trace::Benchmark bench, std::uint32_t ranks,
          std::uint32_t iterations)
{
    trace::NasConfig cfg;
    cfg.ranks = ranks;
    cfg.iterations = iterations;
    cfg.seed = 1;
    const auto tr = trace::generateBenchmark(bench, cfg);
    std::ostringstream os;
    tr.save(os);
    return os.str();
}

bool
connect(serve::Client &client, const Options &opt)
{
    const bool ok = !opt.socketPath.empty()
                        ? client.connectUnix(opt.socketPath)
                        : client.connectTcp(opt.port);
    if (!ok)
        return false;
    // A hung daemon must fail the run, not wedge the harness: any
    // response taking over two minutes counts as a hang.
    timeval tv{120, 0};
    ::setsockopt(client.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv,
                 sizeof tv);
    return true;
}

std::string
designRequest(const std::string &id, const std::string &trace,
              std::uint64_t seed, std::int64_t deadlineMs)
{
    std::ostringstream os;
    os << "{\"id\": \"" << id << "\", \"cmd\": \"design\", \"trace\": \""
       << serve::jsonEscape(trace) << "\", \"seed\": " << seed
       << ", \"restarts\": 2, \"deadline_ms\": " << deadlineMs << "}";
    return os.str();
}

std::string
exploreRequest(const std::string &id, const std::string &trace,
               std::int64_t deadlineMs)
{
    std::ostringstream os;
    os << "{\"id\": \"" << id
       << "\", \"cmd\": \"explore\", \"trace\": \""
       << serve::jsonEscape(trace)
       << "\", \"degrees\": [4], \"restarts\": [2], \"vcs\": [2], "
          "\"unidirectional\": [0], \"deadline_ms\": "
       << deadlineMs << "}";
    return os.str();
}

/**
 * Coordinator-style dse_job with the signature the daemon itself
 * computes, so a well-formed submission is accepted (and its result
 * lands in the job cache for warm repeats). Omitting the signature
 * instead turns it into a hostile line the daemon must fail closed.
 */
std::string
dseJobRequest(const std::string &id, const std::string &trace,
              std::uint64_t seed, bool withSig)
{
    dse::JobParams params;
    params.maxDegree = 4;
    params.restarts = 2;
    params.seed = seed;
    params.unidirectional = false;
    params.numVcs = 2;
    params.vcDepth = 4;
    params.phaseWindow = 0;
    const auto sig = dse::jobSignature(params, dse::ExploreConfig{});
    std::ostringstream os;
    os << "{\"id\": \"" << id << "\", \"cmd\": \"dse_job\","
          " \"attempt\": 1, \"job_index\": 0,";
    if (withSig)
        os << " \"sig\": \"" << serve::jsonEscape(sig) << "\",";
    os << " \"max_degree\": 4, \"restarts\": 2, \"seed\": " << seed
       << ", \"unidirectional\": 0, \"vcs\": 2, \"vc_depth\": 4,"
          " \"phase_window\": 0, \"deadline_ms\": 60000,"
          " \"trace\": \""
       << serve::jsonEscape(trace) << "\"}";
    return os.str();
}

/** Send one line, read one reply, classify the outcome. */
void
roundTrip(serve::Client &client, Tally &tally, const std::string &line,
          bool wellFormed)
{
    const auto t0 = nowUs();
    if (!client.sendLine(line)) {
        tally.count(wellFormed ? "send_failed" : "conn_closed");
        client.close();
        return;
    }
    const auto replyLine = client.recvLine();
    if (!replyLine) {
        tally.count(wellFormed ? "no_response" : "conn_closed");
        client.close();
        return;
    }
    const auto reply = serve::parseReply(*replyLine);
    if (!reply) {
        tally.count("unparseable_reply");
        return;
    }
    if (wellFormed)
        tally.latency(static_cast<std::uint64_t>(nowUs() - t0));
    tally.count(reply->ok ? "ok" : reply->code);
}

void
clientLoop(const Options &opt, unsigned threadIdx, unsigned requests,
           Tally &tally, const std::vector<std::string> &traces)
{
    std::mt19937_64 rng(opt.seed * 7919 + threadIdx);
    serve::Client client;

    for (unsigned i = 0; i < requests; ++i) {
        if (!client.connected() && !connect(client, opt)) {
            tally.count("connect_failed");
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
            continue;
        }
        const std::string id =
            "c" + std::to_string(threadIdx) + "-" + std::to_string(i);
        const auto &trace = traces[rng() % traces.size()];

        switch (rng() % 14) {
          case 0:
          case 1: // liveness probe
            roundTrip(client, tally,
                      "{\"id\": \"" + id + "\", \"cmd\": \"ping\"}",
                      true);
            break;
          case 2:
          case 3:
          case 4: // valid design (small key pool -> LRU/dedup traffic)
            roundTrip(client, tally,
                      designRequest(id, trace, 1 + rng() % 2, 60'000),
                      true);
            break;
          case 5: // valid explore
            roundTrip(client, tally,
                      exploreRequest(id, trace, 60'000), true);
            break;
          case 6: // malformed JSON
            roundTrip(client, tally,
                      "{\"id\": \"" + id + "\", \"cmd\": ", false);
            break;
          case 7: { // garbage bytes (newline-terminated)
            std::string garbage = "\x01\xff\xfe{]garbage";
            garbage += static_cast<char>(rng() % 256);
            roundTrip(client, tally, garbage, false);
            break;
          }
          case 8: { // unknown / misplaced fields
            roundTrip(client, tally,
                      "{\"id\": \"" + id +
                          "\", \"cmd\": \"design\", \"trace\": \"x\","
                          " \"bogus_knob\": 7}",
                      false);
            break;
          }
          case 9: { // slow writer: dribble a ping within the timeout
            const std::string line =
                "{\"id\": \"" + id + "\", \"cmd\": \"ping\"}\n";
            bool sent = true;
            for (std::size_t p = 0; p < line.size() && sent; p += 3) {
                sent = client.sendRaw(line.substr(p, 3));
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
            if (!sent) {
                tally.count("conn_closed");
                client.close();
                break;
            }
            const auto replyLine = client.recvLine();
            if (!replyLine) {
                tally.count("no_response");
                client.close();
                break;
            }
            const auto reply = serve::parseReply(*replyLine);
            tally.count(reply && reply->ok ? "ok"
                                           : "unparseable_reply");
            break;
          }
          case 10: // mid-request disconnect (no newline, then close)
            client.sendRaw("{\"id\": \"" + id +
                           "\", \"cmd\": \"design\", \"tra");
            client.close();
            tally.count("disconnected");
            break;
          case 11: // tiny deadline: timeout (or ok if cache-warm)
            roundTrip(client, tally,
                      exploreRequest(id, trace, 1), true);
            break;
          case 12: // valid coordinator-style dse_job
            roundTrip(client, tally,
                      dseJobRequest(id, trace, 1 + rng() % 2, true),
                      true);
            break;
          case 13: // dse_job without its mandatory signature
            roundTrip(client, tally,
                      dseJobRequest(id, trace, 1, false), false);
            break;
        }

        // Rarely, an oversized line: must be rejected, never absorbed.
        if (threadIdx == 0 && i == requests / 2) {
            if (client.connected() || connect(client, opt)) {
                std::string huge(serve::kMaxRequestBytes + 64, 'a');
                huge += '\n';
                // The daemon kills the connection at the limit; our
                // send may fail mid-way and the error response may be
                // lost to the reset. Only an OK reply is a failure.
                const bool sent = client.sendRaw(huge);
                const auto replyLine =
                    sent ? client.recvLine() : std::nullopt;
                const auto reply = replyLine
                                       ? serve::parseReply(*replyLine)
                                       : std::nullopt;
                if (reply && reply->ok)
                    tally.count("oversized_unrejected");
                else if (reply)
                    tally.count(reply->code);
                else
                    tally.count("oversized_rejected_by_close");
                client.close();
            }
        }
    }
}

/** Flip one byte in the middle of random cache records, repeatedly. */
void
corruptLoop(const std::string &dir, std::atomic<bool> &stop,
            std::atomic<std::uint64_t> &corruptions, std::uint64_t seed)
{
    namespace fs = std::filesystem;
    std::mt19937_64 rng(seed);
    while (!stop.load()) {
        std::vector<fs::path> records;
        std::error_code ec;
        for (const auto &entry : fs::directory_iterator(dir, ec))
            if (entry.path().extension() == ".json")
                records.push_back(entry.path());
        if (!records.empty()) {
            const auto &victim = records[rng() % records.size()];
            std::fstream f(victim,
                           std::ios::in | std::ios::out |
                               std::ios::binary);
            if (f) {
                f.seekg(0, std::ios::end);
                const auto size = static_cast<std::uint64_t>(f.tellg());
                if (size > 8) {
                    const auto pos = size / 2 + rng() % (size / 4);
                    f.seekg(static_cast<std::streamoff>(pos));
                    char c = 0;
                    f.get(c);
                    f.seekp(static_cast<std::streamoff>(pos));
                    f.put(static_cast<char>(c ^ 0x5a));
                    corruptions.fetch_add(1);
                }
            }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
}

std::optional<double>
statusNumber(const json::Value &status, const char *name)
{
    if (const auto *v = status.find(name); v && v->isNumber())
        return v->asNumber();
    return std::nullopt;
}

/** Fetch and parse the daemon's status document. */
std::optional<json::Value>
fetchStatus(const Options &opt)
{
    serve::Client client;
    if (!connect(client, opt))
        return std::nullopt;
    if (!client.sendLine("{\"id\": \"st\", \"cmd\": \"status\"}"))
        return std::nullopt;
    const auto line = client.recvLine();
    if (!line)
        return std::nullopt;
    const auto reply = serve::parseReply(*line);
    if (!reply || !reply->ok)
        return std::nullopt;
    return json::parse(reply->result);
}

std::uint64_t
quantile(std::vector<std::uint64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[rank];
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const std::string value = argv[i + 1];
        if (flag == "--socket")
            opt.socketPath = value;
        else if (flag == "--port")
            opt.port = std::atoi(value.c_str());
        else if (flag == "--clients")
            opt.clients = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 10));
        else if (flag == "--requests")
            opt.requests = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 10));
        else if (flag == "--seed")
            opt.seed = std::strtoull(value.c_str(), nullptr, 10);
        else if (flag == "--corrupt-cache")
            opt.corruptCacheDir = value;
        else if (flag == "--out")
            opt.outPath = value;
        else {
            std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
            return 2;
        }
    }
    if (opt.socketPath.empty() && opt.port < 0) {
        std::fprintf(stderr,
                     "usage: serve_chaos --socket PATH | --port N "
                     "[--clients C] [--requests R] [--seed S] "
                     "[--corrupt-cache DIR] [--out FILE]\n");
        return 2;
    }
    if (opt.clients == 0)
        opt.clients = 1;

    // Small, fast patterns; a few distinct ones so the mix hits both
    // cold computes and warm cache paths.
    const std::vector<std::string> traces = {
        traceText(trace::Benchmark::CG, 8, 1),
        traceText(trace::Benchmark::MG, 8, 1),
        traceText(trace::Benchmark::CG, 16, 1),
    };

    std::vector<std::string> problems;

    if (!fetchStatus(opt)) {
        std::fprintf(stderr,
                     "serve_chaos: daemon not reachable before load\n");
        return 1;
    }

    // --- Load + chaos phase ------------------------------------------
    Tally tally;
    std::atomic<bool> stopCorruption{false};
    std::atomic<std::uint64_t> corruptions{0};
    std::thread saboteur;
    if (!opt.corruptCacheDir.empty())
        saboteur = std::thread([&] {
            corruptLoop(opt.corruptCacheDir, stopCorruption,
                        corruptions, opt.seed);
        });

    const auto t0 = nowUs();
    {
        std::vector<std::thread> threads;
        const unsigned perClient =
            (opt.requests + opt.clients - 1) / opt.clients;
        for (unsigned c = 0; c < opt.clients; ++c)
            threads.emplace_back([&, c] {
                clientLoop(opt, c, perClient, tally, traces);
            });
        for (auto &t : threads)
            t.join();
    }
    const auto elapsedUs = nowUs() - t0;
    stopCorruption.store(true);
    if (saboteur.joinable())
        saboteur.join();

    // --- Single-flight wave ------------------------------------------
    const auto before = fetchStatus(opt);
    std::uint64_t computations0 = 0;
    if (before) {
        computations0 = static_cast<std::uint64_t>(
            statusNumber(*before, "computations").value_or(0));
    } else {
        problems.push_back("status unreachable before dedup wave");
    }

    // A trace no chaos category used, so the key is fresh to the LRU
    // and the flight table.
    const auto dedupTrace = traceText(trace::Benchmark::MG, 16, 1);
    constexpr unsigned kWave = 8;
    std::vector<std::optional<std::string>> waveResults(kWave);
    {
        std::vector<std::thread> threads;
        for (unsigned w = 0; w < kWave; ++w)
            threads.emplace_back([&, w] {
                serve::Client client;
                if (!connect(client, opt))
                    return;
                const auto req = exploreRequest(
                    "wave" + std::to_string(w), dedupTrace, 120'000);
                if (!client.sendLine(req))
                    return;
                const auto line = client.recvLine();
                if (!line)
                    return;
                const auto reply = serve::parseReply(*line);
                if (reply && reply->ok)
                    waveResults[w] = reply->result;
            });
        for (auto &t : threads)
            t.join();
    }
    unsigned waveOk = 0;
    bool waveIdentical = true;
    for (const auto &r : waveResults) {
        if (!r)
            continue;
        ++waveOk;
        if (*r != *waveResults[0])
            waveIdentical = false;
    }
    std::uint64_t computationsDelta = 0;
    const auto after = fetchStatus(opt);
    if (after) {
        computationsDelta =
            static_cast<std::uint64_t>(
                statusNumber(*after, "computations").value_or(0)) -
            computations0;
    }
    if (waveOk != kWave)
        problems.push_back("dedup wave: only " +
                           std::to_string(waveOk) + "/" +
                           std::to_string(kWave) + " ok responses");
    if (!waveIdentical)
        problems.push_back("dedup wave: responses not byte-identical");
    if (before && after && computationsDelta != 1)
        problems.push_back("dedup wave: expected 1 computation, got " +
                           std::to_string(computationsDelta));

    // --- Quiescence check --------------------------------------------
    // Cancellation is cooperative, so a job whose client vanished may
    // still be unwinding for a moment after the load ends. "Leaked"
    // means it NEVER finishes: poll with a generous deadline and only
    // flag jobs still in flight after that.
    double finalInFlight = -1, finalQueueDepth = -1;
    bool reachable = false;
    const auto quiesceDeadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
        if (const auto quiesced = fetchStatus(opt)) {
            reachable = true;
            finalInFlight =
                statusNumber(*quiesced, "in_flight").value_or(-1);
            finalQueueDepth =
                statusNumber(*quiesced, "queue_depth").value_or(-1);
            if (finalInFlight == 0 && finalQueueDepth == 0)
                break;
        }
        if (std::chrono::steady_clock::now() >= quiesceDeadline)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (!reachable) {
        problems.push_back(
            "daemon unreachable after load (crash or hang)");
    } else {
        if (finalInFlight != 0)
            problems.push_back("leaked in-flight jobs after load");
        if (finalQueueDepth != 0)
            problems.push_back("non-empty queue after load");
    }

    // --- Outcome audit ------------------------------------------------
    std::uint64_t total = 0;
    {
        const std::scoped_lock lock(tally.mutex);
        for (const auto &[outcome, n] : tally.outcomes) {
            total += n;
            if (outcome == "internal" || outcome == "no_response" ||
                outcome == "send_failed" ||
                outcome == "unparseable_reply" ||
                outcome == "oversized_unrejected" ||
                outcome == "connect_failed")
                problems.push_back(outcome + " x" +
                                   std::to_string(n));
        }
    }

    std::sort(tally.latenciesUs.begin(), tally.latenciesUs.end());
    const auto p50 = quantile(tally.latenciesUs, 0.5);
    const auto p99 = quantile(tally.latenciesUs, 0.99);
    const double throughput =
        elapsedUs > 0 ? 1e6 * static_cast<double>(total) /
                            static_cast<double>(elapsedUs)
                      : 0.0;

    const bool pass = problems.empty();

    std::ostringstream artifact;
    artifact << "{\n  \"clients\": " << opt.clients
             << ",\n  \"requests\": " << total
             << ",\n  \"elapsed_us\": " << elapsedUs
             << ",\n  \"throughput_rps\": " << throughput
             << ",\n  \"latency_us\": {\"p50\": " << p50
             << ", \"p99\": " << p99 << "}"
             << ",\n  \"corruptions\": " << corruptions.load()
             << ",\n  \"outcomes\": {";
    {
        const std::scoped_lock lock(tally.mutex);
        bool first = true;
        for (const auto &[outcome, n] : tally.outcomes) {
            artifact << (first ? "" : ", ") << '"' << outcome
                     << "\": " << n;
            first = false;
        }
    }
    artifact << "}"
             << ",\n  \"dedup\": {\"responses_ok\": " << waveOk
             << ", \"identical\": "
             << (waveIdentical ? "true" : "false")
             << ", \"computations_delta\": " << computationsDelta
             << "}"
             << ",\n  \"final\": {\"in_flight\": " << finalInFlight
             << ", \"queue_depth\": " << finalQueueDepth << "}"
             << ",\n  \"problems\": [";
    for (std::size_t i = 0; i < problems.size(); ++i)
        artifact << (i ? ", " : "") << '"' << problems[i] << '"';
    artifact << "],\n  \"pass\": " << (pass ? "true" : "false")
             << "\n}\n";

    if (!opt.outPath.empty()) {
        std::ofstream os(opt.outPath);
        os << artifact.str();
    }
    std::fputs(artifact.str().c_str(), stdout);

    if (!pass) {
        for (const auto &p : problems)
            std::fprintf(stderr, "FAIL: %s\n", p.c_str());
        return 1;
    }
    return 0;
}
