/**
 * @file
 * Figure 8 reproduction: total execution time and communication time
 * of every benchmark on crossbar / mesh / torus / generated networks,
 * normalized to the non-blocking crossbar, for the 8/9-node (a) and
 * 16-node (b) configurations.
 *
 * The paper's qualitative claims checked here:
 *  - the generated network tracks the crossbar within a few percent,
 *  - it beats the mesh most clearly on CG-16 (and never loses badly),
 *  - the torus sits between mesh and crossbar, and
 *  - no deadlocks occur in any run.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/methodology.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;

namespace {

std::uint32_t gDeadlocks = 0;

void
runConfig(const char *title, bool large)
{
    std::printf("=== Figure 8(%s): %s ===\n", large ? "b" : "a", title);
    std::printf("%-5s %5s | %-9s | %12s %12s | %10s %10s\n", "bench",
                "ranks", "network", "exec cycles", "comm cycles",
                "exec norm", "comm norm");

    for (const auto bench : trace::kAllBenchmarks) {
        const std::uint32_t ranks = large
                                        ? trace::largeConfigRanks(bench)
                                        : trace::smallConfigRanks(bench);
        trace::NasConfig cfg;
        cfg.ranks = ranks;
        cfg.iterations = 3;
        const auto tr = trace::generateBenchmark(bench, cfg);

        core::MethodologyConfig mcfg;
        mcfg.partitioner.constraints.maxDegree = 5;
        const auto outcome =
            core::runMethodology(trace::analyzeByCall(tr), mcfg);
        const auto plan = topo::planFloor(outcome.design);

        const auto generated =
            topo::buildFromDesign(outcome.design, plan);
        const auto crossbar = topo::buildCrossbar(ranks);
        const auto mesh = topo::buildMesh(ranks);
        const auto torus = topo::buildTorus(ranks);

        struct Row
        {
            const char *name;
            const topo::BuiltNetwork *net;
        };
        const Row rows[] = {{"crossbar", &crossbar},
                            {"mesh", &mesh},
                            {"torus", &torus},
                            {"generated", &generated}};

        double baseExec = 0.0;
        double baseComm = 0.0;
        for (const auto &row : rows) {
            const auto res =
                sim::runTrace(tr, *row.net->topo, *row.net->routing);
            gDeadlocks += res.deadlockRecoveries;
            const auto exec = static_cast<double>(res.execTime);
            const auto comm = res.commTimeMean();
            if (baseExec == 0.0) {
                baseExec = exec;
                baseComm = comm > 0.0 ? comm : 1.0;
            }
            std::printf("%-5s %5u | %-9s | %12.0f %12.0f | %9.3fx "
                        "%9.3fx\n",
                        trace::benchmarkName(bench).c_str(), ranks,
                        row.name, exec, comm, exec / baseExec,
                        comm / baseComm);
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    std::printf("Trace-driven performance comparison "
                "(normalized to the crossbar = 1.000x).\n"
                "Simulator: wormhole, 3 VCs, 32-bit flits, 10-cycle "
                "send/recv overhead, DOR mesh,\nTFAR torus, "
                "source-routed generated networks.\n\n");
    runConfig("8 / 9 node configurations", false);
    runConfig("16 node configurations", true);
    std::printf("total deadlock recoveries across all runs: %u "
                "(paper observed none)\n",
                gDeadlocks);
    return gDeadlocks == 0 ? 0 : 1;
}
