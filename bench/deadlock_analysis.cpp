/**
 * @file
 * Static deadlock analysis of every routing/topology combination in
 * the evaluation.
 *
 * The paper reports "for all execution traces simulated on all of the
 * above networks and configurations, no deadlocks were detected. This
 * result is consistent with prior observations [20]" — [20] being
 * Warnakulasuriya & Pinkston's deadlock characterization in irregular
 * networks. This bench *explains* that observation with channel
 * dependency graphs: mesh DOR and the generated source-routed designs
 * are provably acyclic (deadlock-free), while torus TFAR is cyclic and
 * merely unlikely to deadlock under application traffic (hence the
 * paper's detection-and-recovery safety net). Up-star/down-star
 * routing is included as the deadlock-free-by-construction baseline
 * for irregular topologies.
 */

#include <cstdio>

#include "core/methodology.hpp"
#include "topo/builders.hpp"
#include "topo/deadlock_analysis.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::topo;

namespace {

void
report(const char *name, const Topology &topo,
       const RoutingFunction &routing)
{
    const auto r = analyzeChannelDependencies(topo, routing);
    std::printf("%-26s %-10s | %8zu %12zu | %s\n", name,
                routing.name().c_str(), r.usedChannels, r.dependencies,
                r.acyclic ? "ACYCLIC (deadlock-free)" : "cyclic");
}

} // namespace

int
main()
{
    std::printf("Channel-dependency-graph analysis "
                "(Dally-Seitz criterion).\n\n");
    std::printf("%-26s %-10s | %8s %12s | %s\n", "network", "routing",
                "channels", "dependencies", "verdict");

    {
        const auto net = buildCrossbar(16);
        report("crossbar-16", *net.topo, *net.routing);
    }
    {
        const auto net = buildMesh(16);
        report("mesh-4x4", *net.topo, *net.routing);
        const auto updown = makeUpDownRouting(*net.topo);
        report("mesh-4x4", *net.topo, *updown);
    }
    {
        const auto net = buildTorus(16);
        report("torus-4x4", *net.topo, *net.routing);
        const auto updown = makeUpDownRouting(*net.topo);
        report("torus-4x4", *net.topo, *updown);
    }

    for (const auto bench : trace::kAllBenchmarks) {
        const std::uint32_t ranks = trace::largeConfigRanks(bench);
        trace::NasConfig cfg;
        cfg.ranks = ranks;
        cfg.iterations = 1;
        core::MethodologyConfig mcfg;
        mcfg.partitioner.constraints.maxDegree = 5;
        const auto outcome = core::runMethodology(
            trace::analyzeByCall(trace::generateBenchmark(bench, cfg)),
            mcfg);
        const auto plan = planFloor(outcome.design);
        const auto net = buildFromDesign(outcome.design, plan);

        const auto name =
            "generated-" + trace::benchmarkName(bench) + "-16";
        report(name.c_str(), *net.topo, *net.routing);
        const auto updown = makeUpDownRouting(*net.topo);
        report(name.c_str(), *net.topo, *updown);
    }

    std::printf(
        "\nreading: DOR is provably deadlock-free; the 8/9-node "
        "generated designs analyze\nacyclic, while the 16-node ones "
        "(whose tables also carry all-pairs BFS fallback\nroutes for "
        "foreign traffic) have dependency cycles yet never deadlock "
        "under their\nown traffic -- matching the paper's observation "
        "and justifying its detection-and-\nrecovery safety net. "
        "Up-star/down-star is acyclic everywhere by construction and\n"
        "is the drop-in remedy when a guarantee is required.\n");
    return 0;
}
