/**
 * @file
 * Virtual-channel ablation. The paper states that each physical link
 * has 3 virtual channels and that "this helps to alleviate contention
 * problems for the mesh and torus" while possibly also helping the
 * generated network absorb time-skew contention. This bench sweeps the
 * VC count on the CG-16 workload (the most contended one) and reports
 * execution time per topology.
 */

#include <cstdio>

#include "core/methodology.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;

int
main()
{
    trace::NasConfig ncfg;
    ncfg.ranks = 16;
    ncfg.iterations = 3;
    const auto tr = trace::generateCG(ncfg);

    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    const auto outcome = core::runMethodology(
        trace::analyzeByCall(tr), mcfg);
    const auto plan = topo::planFloor(outcome.design);
    const auto generated = topo::buildFromDesign(outcome.design, plan);
    const auto crossbar = topo::buildCrossbar(16);
    const auto mesh = topo::buildMesh(16);
    const auto torus = topo::buildTorus(16);

    struct Net
    {
        const char *name;
        const topo::BuiltNetwork *net;
    };
    const Net nets[] = {{"crossbar", &crossbar},
                        {"mesh", &mesh},
                        {"torus", &torus},
                        {"generated", &generated}};

    std::printf("CG-16 execution time (cycles) by virtual-channel "
                "count:\n\n");
    std::printf("%-6s", "VCs");
    for (const auto &n : nets)
        std::printf(" %12s", n.name);
    std::printf("\n");

    for (const std::uint32_t vcs : {1u, 2u, 3u, 4u, 6u}) {
        sim::SimConfig cfg;
        cfg.numVcs = vcs;
        std::printf("%-6u", vcs);
        for (const auto &n : nets) {
            const auto res =
                sim::runTrace(tr, *n.net->topo, *n.net->routing, cfg);
            std::printf(" %12lld",
                        static_cast<long long>(res.execTime));
        }
        std::printf("\n");
    }
    std::printf(
        "\nreading: the contention-free generated network and the "
        "crossbar are completely\nVC-insensitive (nothing ever "
        "blocks). The adaptive torus improves with VCs (TFAR\nneeds "
        "free VCs to exploit alternative paths). The mesh slightly "
        "DEGRADES with more\nVCs on this lock-step workload: "
        "round-robin flit interleaving stretches both\nconflicting "
        "wormholes, whereas single-VC serialization releases one "
        "waiting rank\nearly — a known subtlety of VC flow control "
        "under synchronized traffic.\n");
    return 0;
}
