/**
 * @file
 * Multi-application workload design — the robust answer to the paper's
 * cross-pattern experiment: instead of transplanting a foreign trace
 * onto a single-application network (Section 4.2, up to ~20-30%
 * degradation for BT on CG), design once for the *union* of the
 * applications' contention periods.
 *
 * Reports, for the CG+FFT-16 pair:
 *  - resources of the merged-workload network vs the per-application
 *    networks and the mesh, and
 *  - each application's performance on the merged network vs its
 *    native network (should be near-native: the merged network is
 *    contention-free for both by construction).
 */

#include <cstdio>

#include "core/methodology.hpp"
#include "core/workload.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;

namespace {

struct Designed
{
    core::DesignOutcome outcome;
    topo::Floorplan plan;
    topo::BuiltNetwork net;
};

Designed
design(const core::CliqueSet &ks)
{
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    Designed d{core::runMethodology(ks, mcfg), {}, {}};
    d.plan = topo::planFloor(d.outcome.design);
    d.net = topo::buildFromDesign(d.outcome.design, d.plan);
    return d;
}

} // namespace

int
main()
{
    trace::NasConfig cfg;
    cfg.ranks = 16;
    cfg.iterations = 3;
    const auto cgTrace = trace::generateCG(cfg);
    const auto fftTrace = trace::generateFFT(cfg);

    const auto cgCliques = trace::analyzeByCall(cgTrace);
    const auto fftCliques = trace::analyzeByCall(fftTrace);
    const auto merged =
        core::mergeCliqueSets({cgCliques, fftCliques});

    std::printf("=== Workload design: CG-16 + FFT-16 ===\n\n");
    std::printf("contention periods: CG %zu, FFT %zu, merged %zu\n",
                cgCliques.numCliques(), fftCliques.numCliques(),
                merged.numCliques());

    const auto cgOnly = design(cgCliques);
    const auto fftOnly = design(fftCliques);
    const auto both = design(merged);

    const auto [meshSw, meshLk] = topo::meshAreas(16);
    std::printf("\n%-14s %9s %9s %12s\n", "design", "switches",
                "links", "Theorem 1");
    auto row = [&](const char *name, const Designed &d) {
        std::printf("%-14s %9u %9u %12s\n", name, d.plan.switchArea,
                    d.plan.linkArea + d.plan.procLinkArea,
                    d.outcome.violations.empty() ? "holds"
                                                 : "VIOLATED");
    };
    row("CG only", cgOnly);
    row("FFT only", fftOnly);
    row("merged", both);
    std::printf("%-14s %9u %9u %12s\n", "mesh", meshSw, meshLk, "no");

    // Cover checks: the merged set must dominate both inputs.
    std::printf("\nmerged covers CG: %s, covers FFT: %s\n",
                core::coveredBy(cgCliques, merged) ? "yes" : "NO",
                core::coveredBy(fftCliques, merged) ? "yes" : "NO");

    // Performance of each application on its native vs merged network.
    std::printf("\n%-10s %14s %14s %10s\n", "workload", "native",
                "merged net", "delta");
    auto perf = [&](const char *name, const trace::Trace &tr,
                    const Designed &native) {
        const auto rn =
            sim::runTrace(tr, *native.net.topo, *native.net.routing);
        const auto rm =
            sim::runTrace(tr, *both.net.topo, *both.net.routing);
        std::printf("%-10s %14lld %14lld %9.1f%%\n", name,
                    static_cast<long long>(rn.execTime),
                    static_cast<long long>(rm.execTime),
                    100.0 * (static_cast<double>(rm.execTime) /
                                 static_cast<double>(rn.execTime) -
                             1.0));
    };
    perf("CG-16", cgTrace, cgOnly);
    perf("FFT-16", fftTrace, fftOnly);

    std::printf("\nexpected shape: merged network costs more than "
                "either single-app network but\nserves both within a "
                "few percent of native — unlike the cross-pattern "
                "transplant.\n");
    return 0;
}
