/**
 * @file
 * Complexity scaling (Section 3.3): the paper bounds the methodology
 * at O(N^2 K L). This harness sweeps the processor count on synthetic
 * phase-parallel patterns with fixed K (periods) and L (clique size
 * proportional to N), measures wall-clock time of a full methodology
 * run, and reports the growth factors. It also ablates the maximum-
 * clique-set reduction (more cliques = more Fast_Color work but the
 * same final networks).
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/methodology.hpp"
#include "util/rng.hpp"

using namespace minnoc;
using namespace minnoc::core;

namespace {

/**
 * Synthetic well-behaved pattern: K phases, each a random permutation
 * of the N processors (every phase one contention period).
 */
CliqueSet
randomPhases(std::uint32_t procs, std::uint32_t phases,
             std::uint64_t seed)
{
    CliqueSet ks(procs);
    Rng rng(seed);
    std::vector<ProcId> perm(procs);
    for (ProcId p = 0; p < procs; ++p)
        perm[p] = p;
    for (std::uint32_t k = 0; k < phases; ++k) {
        rng.shuffle(perm);
        std::vector<Comm> comms;
        for (ProcId p = 0; p < procs; ++p) {
            if (perm[p] != p)
                comms.emplace_back(p, perm[p]);
        }
        ks.addClique(comms);
    }
    return ks;
}

double
timeRun(const CliqueSet &ks, bool reduce)
{
    MethodologyConfig cfg;
    cfg.partitioner.constraints.maxDegree = 6;
    cfg.restarts = 2;
    cfg.reduceCliques = reduce;
    const auto start = std::chrono::steady_clock::now();
    const auto outcome = runMethodology(ks, cfg);
    const auto stop = std::chrono::steady_clock::now();
    if (!outcome.violations.empty())
        std::printf("  (note: %zu residual contentions)\n",
                    outcome.violations.size());
    return std::chrono::duration<double>(stop - start).count();
}

} // namespace

int
main()
{
    std::printf("=== Methodology runtime scaling (paper: O(N^2 K L)) "
                "===\n\n");
    std::printf("%6s %8s | %10s | %12s\n", "procs", "phases",
                "runtime s", "vs prev N");

    constexpr std::uint32_t kPhases = 4;
    double prev = 0.0;
    for (const std::uint32_t procs : {8u, 12u, 16u, 24u, 32u}) {
        const auto ks = randomPhases(procs, kPhases, 42);
        const double secs = timeRun(ks, true);
        std::printf("%6u %8u | %10.3f | %11.2fx\n", procs, kPhases,
                    secs, prev > 0.0 ? secs / prev : 0.0);
        prev = secs;
    }

    std::printf("\n=== Ablation: maximum-clique-set reduction ===\n");
    std::printf("(repeated phases add dominated sub-cliques; reduction "
                "removes them before partitioning)\n\n");
    std::printf("%6s %8s | %12s %12s\n", "procs", "cliques",
                "reduced s", "unreduced s");
    for (const std::uint32_t procs : {12u, 16u}) {
        // Build a set with many dominated cliques: each phase plus all
        // its prefixes.
        CliqueSet ks = randomPhases(procs, kPhases, 7);
        CliqueSet padded(procs);
        for (const auto &k : ks.cliques()) {
            std::vector<Comm> comms;
            for (const auto id : k.comms) {
                comms.push_back(ks.comm(id));
                padded.addClique(comms); // every prefix is dominated
            }
        }
        const double with = timeRun(padded, true);
        const double without = timeRun(padded, false);
        std::printf("%6u %8zu | %12.3f %12.3f\n", procs,
                    padded.numCliques(), with, without);
    }
    std::printf("\nreduction should be at least as fast; results are "
                "identical by construction.\n");
    return 0;
}
