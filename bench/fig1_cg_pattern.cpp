/**
 * @file
 * Figure 1 reproduction: the communication pattern extracted from the
 * CG benchmark on 16 processors.
 *
 * Prints the timed messages of one CG iteration (ideal replay) and the
 * resulting potential contention periods — the three cliques of the
 * paper's Figure 1: two row-reduce exchanges and the matrix transpose
 * with its silent diagonal. Node numbering below is 0-based (the
 * paper's figure is 1-based).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;

int
main()
{
    trace::NasConfig cfg;
    cfg.ranks = 16;
    cfg.iterations = 1;
    cfg.skew = 0.05;
    const auto tr = trace::generateCG(cfg);

    std::printf("=== Figure 1: CG-16 communication pattern ===\n\n");

    // Timed view (Definition 2): the dashed arrows of Figure 1.
    const auto pattern = trace::idealReplay(tr);
    auto msgs = pattern.messages();
    std::sort(msgs.begin(), msgs.end(),
              [](const core::Message &a, const core::Message &b) {
                  if (a.tStart != b.tStart)
                      return a.tStart < b.tStart;
                  return a.comm() < b.comm();
              });
    std::printf("%zu timed messages (showing first 12):\n",
                msgs.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(12, msgs.size());
         ++i) {
        std::printf("  (%2u -> %2u)  start %8.1f  finish %8.1f  "
                    "(%zu bytes, call %u)\n",
                    msgs[i].src, msgs[i].dst, msgs[i].tStart,
                    msgs[i].tFinish,
                    static_cast<std::size_t>(msgs[i].bytes),
                    msgs[i].callId);
    }

    // Contention periods via the paper's by-call extraction.
    auto cliques = trace::analyzeByCall(tr);
    const auto removed = cliques.reduceToMaximum();
    std::printf("\ncontention periods: %zu distinct (%zu dominated "
                "sub-periods removed)\n\n",
                cliques.numCliques(), removed);
    for (std::size_t i = 0; i < cliques.numCliques(); ++i) {
        const auto &k = cliques.cliques()[i];
        std::printf("Contention Period %zu (%zu comms): {", i + 1,
                    k.size());
        bool first = true;
        for (const auto id : k.comms) {
            const auto &c = cliques.comm(id);
            std::printf("%s(%u,%u)", first ? "" : ", ", c.src, c.dst);
            first = false;
        }
        std::printf("}\n");
    }

    // Paper check: period sizes 16, 16 and 12 (partial permutation).
    std::vector<std::size_t> sizes;
    for (const auto &k : cliques.cliques())
        sizes.push_back(k.size());
    std::sort(sizes.begin(), sizes.end());
    const bool match =
        sizes == std::vector<std::size_t>{12, 16, 16};
    std::printf("\npaper shape (two full 16-permutations + one "
                "12-comm partial transpose): %s\n",
                match ? "REPRODUCED" : "MISMATCH");
    return match ? 0 : 1;
}
