/**
 * @file
 * Coherence stress study — how far the methodology stretches when the
 * "well-behaved" assumption frays.
 *
 * Directory-coherence traffic is the canonical ill-behaved workload:
 * data-dependent targets, bimodal message sizes, bursty invalidation
 * fan-out. This bench generates such traffic (src/coh), segments it
 * next to a phase-shift fixture and a NAS trace, synthesizes per-phase
 * networks, and verifies every one of them contention-free via Theorem
 * 1 — then replays the traffic on the generated, mesh, and torus
 * networks under both power tiers. One deterministic JSON document:
 * byte-identical across reruns and across --threads values (the
 * restart pool changes wall time, never the selected designs).
 *
 * Expected shape: the segmenter finds more phases in coherence traffic
 * than in a NAS trace (call sets drift as sharing migrates) but fewer
 * clean boundaries than in the phase-shift fixture (drift is gradual,
 * not epochal). Synthesis still verifies: Theorem 1 holds per phase
 * because the clique structure is what it provisions, however ragged
 * the traffic. The activity tier separates the networks harder than
 * the static tier — coherence bursts queue, and buffer energy bills
 * the queueing.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <ostream>

#include "coh/coherence.hpp"
#include "core/methodology.hpp"
#include "phase/multi_design.hpp"
#include "phase/segmenter.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "topo/power.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

using namespace minnoc;

namespace {

/** Energy of one run under both tiers, as a JSON fragment. */
std::string
energyJson(const topo::Topology &topo, const sim::SimResult &res)
{
    topo::PowerModel activityModel;
    activityModel.kind = topo::PowerModelKind::Activity;
    const auto stat =
        topo::computeEnergy(topo, res.linkFlits, res.execTime);
    const auto act = topo::computeEnergy(topo, res.linkFlits,
                                         res.execTime, res.activity,
                                         activityModel);
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "\"static\": {\"dynamic\": %.2f, \"leakage\": %.2f, "
                  "\"total\": %.2f}, "
                  "\"activity\": {\"dynamic\": %.2f, \"buffer\": %.2f, "
                  "\"leakage\": %.2f, \"total\": %.2f}",
                  stat.dynamic(), stat.leakage(), stat.total(),
                  act.dynamic(), act.bufferDynamic, act.leakage(),
                  act.total());
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto args = cli::Args::parse(
        argc, argv, 1,
        {"ranks", "blocks", "sharers", "rounds", "ops", "seed",
         "threads", "out"});

    coh::CoherenceConfig ccfg;
    ccfg.ranks = args.getU32("ranks", 16);
    ccfg.blocks = args.getU32("blocks", 64);
    ccfg.maxSharers = args.getU32("sharers", 4);
    ccfg.rounds = args.getU32("rounds", 6);
    ccfg.opsPerRankPerRound = args.getU32("ops", 16);
    ccfg.seed = args.getU64("seed", 1);
    ccfg.validate();
    const std::uint32_t threads = args.getU32("threads", 1);

    std::ofstream file;
    const auto out = args.get("out");
    if (!out.empty()) {
        file.open(out);
        if (!file)
            fatal("cannot write '", out, "'");
    }
    std::ostream &os = out.empty() ? std::cout : file;

    // --- the three workloads the segmenter is compared on -----------
    const auto expansion = coh::expandCoherence(ccfg);
    const auto cohTrace = coh::traceFromExpansion(expansion, ccfg);

    trace::PhaseShiftConfig pscfg;
    pscfg.ranks = ccfg.ranks;
    const auto shiftTrace =
        trace::phaseShift({trace::Pattern::Neighbor,
                           trace::Pattern::Transpose,
                           trace::Pattern::Hotspot},
                          pscfg);

    trace::NasConfig ncfg;
    // CG only accepts power-of-two rank counts; the per-workload
    // "ranks" field records which size the comparison actually used.
    ncfg.ranks = 1;
    while (ncfg.ranks * 2 <= ccfg.ranks)
        ncfg.ranks *= 2;
    ncfg.iterations = 2;
    const auto nasTrace = trace::generateCG(ncfg);

    os << "{\n  \"benchmark\": \"coherence_stress\",\n"
       << "  \"config\": {\"ranks\": " << ccfg.ranks
       << ", \"blocks\": " << ccfg.blocks
       << ", \"sharers\": " << ccfg.maxSharers
       << ", \"rounds\": " << ccfg.rounds
       << ", \"ops\": " << ccfg.opsPerRankPerRound
       << ", \"seed\": " << ccfg.seed << "},\n";

    os << "  \"expansion\": {\"messages\": "
       << expansion.stats.messages()
       << ", \"transactions\": " << expansion.stats.transactions
       << ", \"loads\": " << expansion.stats.loads
       << ", \"stores\": " << expansion.stats.stores
       << ", \"hits\": " << expansion.stats.hits
       << ", \"max_inv_fanout\": " << expansion.stats.maxInvFanout
       << ", \"per_type\": {";
    for (std::uint32_t t = 0; t < coh::kNumMsgTypes; ++t)
        os << (t ? ", " : "") << "\""
           << coh::msgTypeName(static_cast<coh::MsgType>(t))
           << "\": " << expansion.stats.perType[t];
    os << "}},\n";

    // --- segmentation: coherence vs phase-shift vs NAS --------------
    const phase::PhaseConfig pcfg; // defaults, identical for all three
    struct Workload
    {
        const char *kind;
        const trace::Trace *tr;
    };
    const Workload workloads[] = {{"coherence", &cohTrace},
                                  {"phase_shift", &shiftTrace},
                                  {"nas_cg", &nasTrace}};
    os << "  \"segmentation\": [\n";
    phase::Segmentation cohSeg;
    for (std::size_t w = 0; w < std::size(workloads); ++w) {
        const auto seg = phase::segmentTrace(*workloads[w].tr, pcfg);
        if (w == 0)
            cohSeg = seg;
        os << "    {\"kind\": \"" << workloads[w].kind
           << "\", \"trace\": \"" << workloads[w].tr->name()
           << "\", \"ranks\": " << workloads[w].tr->numRanks()
           << ", \"messages\": " << seg.numMessages
           << ", \"windows\": " << seg.numWindows
           << ", \"phases\": " << seg.phases.size() << "}"
           << (w + 1 < std::size(workloads) ? "," : "") << "\n";
    }
    os << "  ],\n";

    // --- per-phase synthesis + Theorem-1 verification ---------------
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    std::optional<ThreadPool> pool;
    if (threads > 1)
        pool.emplace(threads);
    const auto multi = phase::synthesizeMultiPhase(
        cohTrace, cohSeg, mcfg, pool ? &*pool : nullptr,
        /*withPhaseDesigns=*/true);

    os << "  \"synthesis\": {\n    \"monolithic\": {\"verified\": "
       << (multi.monolithic.violations.empty() ? "true" : "false")
       << ", \"violations\": " << multi.monolithic.violations.size()
       << "},\n    \"union\": {\"verified\": "
       << (multi.unionViolationCount() == 0 ? "true" : "false")
       << ", \"violations\": " << multi.unionViolationCount()
       << "},\n    \"phases\": [\n";
    for (std::size_t p = 0; p < multi.phases.size(); ++p) {
        const auto &pd = multi.phases[p];
        os << "      {\"phase\": " << pd.phase << ", \"messages\": "
           << cohSeg.phases[pd.phase].messages << ", \"verified\": "
           << (pd.outcome.violations.empty() ? "true" : "false")
           << ", \"violations\": " << pd.outcome.violations.size()
           << "}" << (p + 1 < multi.phases.size() ? "," : "") << "\n";
    }
    os << "    ]\n  },\n";

    // --- replay on generated / mesh / torus, both power tiers -------
    const auto plan = topo::planFloor(multi.monolithic.design);
    const auto generated =
        topo::buildFromDesign(multi.monolithic.design, plan);
    const auto mesh = topo::buildMesh(ccfg.ranks);
    const auto torus = topo::buildTorus(ccfg.ranks);

    struct Net
    {
        const char *name;
        const topo::BuiltNetwork *net;
    };
    const Net nets[] = {{"generated", &generated},
                        {"mesh", &mesh},
                        {"torus", &torus}};
    os << "  \"networks\": [\n";
    for (std::size_t n = 0; n < std::size(nets); ++n) {
        const auto res = sim::runTrace(cohTrace, *nets[n].net->topo,
                                       *nets[n].net->routing);
        os << "    {\"name\": \"" << nets[n].name
           << "\", \"exec_time\": " << res.execTime
           << ", \"deadlock_recoveries\": " << res.deadlockRecoveries
           << ", " << energyJson(*nets[n].net->topo, res) << "}"
           << (n + 1 < std::size(nets) ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    if (!out.empty())
        std::fprintf(stderr, "wrote %s\n", out.c_str());
    return 0;
}
