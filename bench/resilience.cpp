/**
 * @file
 * Degradation curves under injected faults — how gracefully each
 * network gives ground as links die and traversals corrupt packets.
 *
 * Sweeps permanently-failed link counts crossed with transient
 * corruption rates over the CG trace on four networks and emits one
 * JSON document of degradation points (delivered fraction, latency
 * inflation, retransmissions, disconnected pairs, execution time).
 *
 * Expected shape: the mesh and torus shrug off several random
 * inter-switch failures (BFS rerouting finds detours), the crossbar
 * has no detours at all (every random failure amputates a processor),
 * and the generated network — minimal by construction — sits in
 * between: it survives some failures but disconnects sooner than the
 * regular topologies because the methodology pruned its redundancy.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>

#include "core/methodology.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace minnoc;

int
main(int argc, char **argv)
{
    const auto args = cli::Args::parse(argc, argv, 1,
                                       {"ranks", "fault-seed", "out"});
    const std::uint32_t kRanks = args.getU32("ranks", 16);
    const std::uint64_t kFaultSeed = args.getU64("fault-seed", 7);

    std::ofstream file;
    const auto out = args.get("out");
    if (!out.empty()) {
        file.open(out);
        if (!file)
            fatal("cannot write '", out, "'");
    }
    std::ostream &os = out.empty() ? std::cout : file;

    const auto crossbar = topo::buildCrossbar(kRanks);
    const auto mesh = topo::buildMesh(kRanks);
    const auto torus = topo::buildTorus(kRanks);
    trace::NasConfig ncfg;
    ncfg.ranks = kRanks;
    ncfg.iterations = 1;
    const auto cg = trace::generateCG(ncfg);
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    const auto outcome = core::runMethodology(trace::analyzeByCall(cg), mcfg);
    const auto plan = topo::planFloor(outcome.design);
    const auto generated = topo::buildFromDesign(outcome.design, plan);

    struct Net
    {
        const char *name;
        const topo::BuiltNetwork *net;
    };
    const Net nets[] = {{"crossbar", &crossbar},
                        {"mesh", &mesh},
                        {"torus", &torus},
                        {"generated(CG)", &generated}};
    const std::uint32_t failCounts[] = {0, 1, 2, 4};
    const double errorRates[] = {0.0, 0.001, 0.01};

    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\n  \"benchmark\": \"resilience\",\n"
                  "  \"trace\": \"CG-%u\",\n  \"fault_seed\": %llu,\n"
                  "  \"networks\": [\n",
                  kRanks, static_cast<unsigned long long>(kFaultSeed));
    os << buf;
    for (std::size_t n = 0; n < std::size(nets); ++n) {
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"points\": [\n",
                      nets[n].name);
        os << buf;
        bool firstPoint = true;
        for (const auto failLinks : failCounts) {
            for (const auto rate : errorRates) {
                sim::FaultConfig fcfg;
                fcfg.randomFailLinks = failLinks;
                fcfg.flitErrorRate = rate;
                fcfg.seed = kFaultSeed;
                const auto res = sim::runTrace(cg, *nets[n].net->topo,
                                               *nets[n].net->routing,
                                               sim::SimConfig{}, fcfg);
                std::snprintf(
                    buf, sizeof buf,
                    "      %s{\"fail_links\": %u, \"flit_error_rate\": %g, "
                    "\"delivered_fraction\": %.4f, "
                    "\"latency_inflation\": %.4f, "
                    "\"exec_time\": %lld, \"retransmissions\": %llu, "
                    "\"dropped\": %llu, \"disconnected_pairs\": %u, "
                    "\"deadlock_recoveries\": %u}",
                    firstPoint ? "" : ",\n      ", failLinks, rate,
                    res.deliveredFraction, res.latencyInflation,
                    static_cast<long long>(res.execTime),
                    static_cast<unsigned long long>(res.retransmissions),
                    static_cast<unsigned long long>(res.packetsDropped),
                    res.disconnectedPairs, res.deadlockRecoveries);
                os << buf;
                firstPoint = false;
            }
        }
        os << "\n    ]}" << (n + 1 < std::size(nets) ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    if (!out.empty())
        std::fprintf(stderr, "wrote %s\n", out.c_str());
    return 0;
}
