/**
 * @file
 * Google-benchmark microbenchmarks for the library's hot paths:
 * coloring algorithms, contention-period extraction, Fast_Color, and
 * raw simulator throughput.
 */

#include <benchmark/benchmark.h>

#include "core/comm_pattern.hpp"
#include "core/design_network.hpp"
#include "graph/clique.hpp"
#include "graph/coloring.hpp"
#include "sim/network.hpp"
#include "topo/builders.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"
#include "util/rng.hpp"

using namespace minnoc;

namespace {

graph::Ugraph
randomGraph(std::size_t n, double p, std::uint64_t seed)
{
    Rng rng(seed);
    graph::Ugraph g(n);
    for (graph::NodeId a = 0; a < n; ++a) {
        for (graph::NodeId b = a + 1; b < n; ++b) {
            if (rng.chance(p))
                g.addEdge(a, b);
        }
    }
    return g;
}

void
BM_GreedyColoring(benchmark::State &state)
{
    const auto g = randomGraph(static_cast<std::size_t>(state.range(0)),
                               0.3, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(graph::greedyColoring(g));
}
BENCHMARK(BM_GreedyColoring)->Arg(16)->Arg(64)->Arg(256);

void
BM_DsaturColoring(benchmark::State &state)
{
    const auto g = randomGraph(static_cast<std::size_t>(state.range(0)),
                               0.3, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(graph::dsaturColoring(g));
}
BENCHMARK(BM_DsaturColoring)->Arg(16)->Arg(64)->Arg(256);

void
BM_ExactColoring(benchmark::State &state)
{
    const auto g = randomGraph(static_cast<std::size_t>(state.range(0)),
                               0.3, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            graph::exactColoring(g, 500'000, nullptr));
    }
}
BENCHMARK(BM_ExactColoring)->Arg(12)->Arg(16)->Arg(20);

void
BM_MaximalCliques(benchmark::State &state)
{
    const auto g = randomGraph(static_cast<std::size_t>(state.range(0)),
                               0.4, 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(graph::maximalCliques(g));
}
BENCHMARK(BM_MaximalCliques)->Arg(12)->Arg(16)->Arg(20);

void
BM_CliqueExtraction(benchmark::State &state)
{
    trace::NasConfig cfg;
    cfg.ranks = 16;
    cfg.iterations = static_cast<std::uint32_t>(state.range(0));
    const auto tr = trace::generateCG(cfg);
    const auto pattern = trace::idealReplay(tr);
    for (auto _ : state)
        benchmark::DoNotOptimize(pattern.extractCliqueSet());
}
BENCHMARK(BM_CliqueExtraction)->Arg(1)->Arg(4)->Arg(16);

void
BM_FastColor(benchmark::State &state)
{
    trace::NasConfig cfg;
    cfg.ranks = 16;
    cfg.iterations = 1;
    const auto tr = trace::generateBT(
        [] {
            trace::NasConfig c;
            c.ranks = 16;
            c.iterations = 1;
            return c;
        }());
    auto ks = trace::analyzeByCall(tr);
    ks.reduceToMaximum();
    core::DesignNetwork net(ks);
    Rng rng(1);
    const auto sj = net.splitSwitch(0, rng);
    const core::PipeKey key(0, sj);
    for (auto _ : state)
        benchmark::DoNotOptimize(net.fastColor(key));
    (void)cfg;
}
BENCHMARK(BM_FastColor);

void
BM_SimulatorCycles(benchmark::State &state)
{
    const auto built = topo::buildMesh(16);
    for (auto _ : state) {
        state.PauseTiming();
        sim::Network net(*built.topo, *built.routing, sim::SimConfig{});
        for (core::ProcId p = 0; p < 16; ++p) {
            net.enqueue(p, static_cast<core::ProcId>(15 - p), 1024, 0,
                        0);
        }
        state.ResumeTiming();
        sim::Cycle now = 0;
        while (!net.idle())
            net.step(++now);
        benchmark::DoNotOptimize(now);
    }
}
BENCHMARK(BM_SimulatorCycles);

void
BM_TraceReplayIdeal(benchmark::State &state)
{
    trace::NasConfig cfg;
    cfg.ranks = 16;
    cfg.iterations = 2;
    const auto tr = trace::generateFFT(cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(trace::idealReplay(tr));
}
BENCHMARK(BM_TraceReplayIdeal);

} // namespace

BENCHMARK_MAIN();
