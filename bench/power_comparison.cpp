/**
 * @file
 * Power/energy comparison — the paper's named future-work extension
 * ("this work can be extended to include other important optimization
 * criteria such as power to produce power-efficient on-chip
 * networks").
 *
 * Replays every benchmark on the four network families and accounts
 * energy with the activity-based model of topo/power.hpp: generated
 * networks should win on leakage (fewer switches, less wire) and on
 * wire energy (traffic concentrated on short, dedicated links), while
 * the torus pays for its doubled wire.
 */

#include <cstdio>

#include "core/methodology.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "topo/power.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;

int
main()
{
    std::printf("Energy per run (activity-based model, arbitrary "
                "units), normalized to mesh = 1.00.\n\n");
    std::printf("%-5s | %-9s | %12s %12s %12s | %8s\n", "bench",
                "network", "dynamic", "leakage", "total", "vs mesh");

    for (const auto bench : trace::kAllBenchmarks) {
        const std::uint32_t ranks = trace::largeConfigRanks(bench);
        trace::NasConfig cfg;
        cfg.ranks = ranks;
        cfg.iterations = 2;
        const auto tr = trace::generateBenchmark(bench, cfg);

        core::MethodologyConfig mcfg;
        mcfg.partitioner.constraints.maxDegree = 5;
        const auto outcome =
            core::runMethodology(trace::analyzeByCall(tr), mcfg);
        const auto plan = topo::planFloor(outcome.design);

        const auto generated =
            topo::buildFromDesign(outcome.design, plan);
        const auto crossbar = topo::buildCrossbar(ranks);
        const auto mesh = topo::buildMesh(ranks);
        const auto torus = topo::buildTorus(ranks);

        struct Row
        {
            const char *name;
            const topo::BuiltNetwork *net;
        };
        const Row rows[] = {{"mesh", &mesh},
                            {"torus", &torus},
                            {"crossbar", &crossbar},
                            {"generated", &generated}};

        double meshTotal = 0.0;
        for (const auto &row : rows) {
            const auto res =
                sim::runTrace(tr, *row.net->topo, *row.net->routing);
            const auto energy = topo::computeEnergy(
                *row.net->topo, res.linkFlits, res.execTime);
            if (meshTotal == 0.0)
                meshTotal = energy.total();
            std::printf("%-5s | %-9s | %12.0f %12.0f %12.0f | %7.2fx\n",
                        trace::benchmarkName(bench).c_str(), row.name,
                        energy.dynamic(), energy.leakage(),
                        energy.total(), energy.total() / meshTotal);
        }
        std::printf("\n");
    }
    std::printf(
        "expected shape: the generated CG network wins outright (~0.7x "
        "mesh: localized\ntraffic on short dedicated links); for "
        "near-neighbor patterns (BT/SP/MG) the mesh\nis already the "
        "dynamic-energy optimum and generated networks pay ~5-12%% in "
        "hop\ncount while winning on leakage; torus pays doubled wire "
        "leakage; the crossbar's\n2-hop paths set the dynamic lower "
        "bound but do not scale.\n");
    return 0;
}
