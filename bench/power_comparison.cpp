/**
 * @file
 * Power/energy comparison — the paper's named future-work extension
 * ("this work can be extended to include other important optimization
 * criteria such as power to produce power-efficient on-chip
 * networks").
 *
 * Replays every benchmark on the four network families and accounts
 * energy under both tiers of topo/power.hpp: the static per-flit-hop
 * model and the activity-based model driven by simulator counters
 * (buffer occupancy, crossbar traversals, per-link flit loads). One
 * JSON document per run: per benchmark, per network, both energy
 * breakdowns plus the ratio to the mesh baseline.
 *
 * Expected shape: the generated CG network wins outright (~0.7x mesh:
 * localized traffic on short dedicated links); for near-neighbor
 * patterns (BT/SP/MG) the mesh is already the dynamic-energy optimum
 * and generated networks pay ~5-12% in hop count while winning on
 * leakage; the torus pays doubled wire leakage; the crossbar's 2-hop
 * paths set the dynamic lower bound but do not scale. The activity
 * tier widens the spread: congested networks hold flits in buffers
 * longer, so buffer energy punishes contention the static model never
 * sees.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>

#include "core/methodology.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "topo/power.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace minnoc;

int
main(int argc, char **argv)
{
    const auto args =
        cli::Args::parse(argc, argv, 1, {"iterations", "out"});
    const std::uint32_t kIterations = args.getU32("iterations", 2);

    std::ofstream file;
    const auto out = args.get("out");
    if (!out.empty()) {
        file.open(out);
        if (!file)
            fatal("cannot write '", out, "'");
    }
    std::ostream &os = out.empty() ? std::cout : file;

    topo::PowerModel activityModel;
    activityModel.kind = topo::PowerModelKind::Activity;

    os << "{\n  \"benchmark\": \"power_comparison\",\n"
       << "  \"iterations\": " << kIterations << ",\n"
       << "  \"benchmarks\": [\n";

    bool firstBench = true;
    for (const auto bench : trace::kAllBenchmarks) {
        const std::uint32_t ranks = trace::largeConfigRanks(bench);
        trace::NasConfig cfg;
        cfg.ranks = ranks;
        cfg.iterations = kIterations;
        const auto tr = trace::generateBenchmark(bench, cfg);

        core::MethodologyConfig mcfg;
        mcfg.partitioner.constraints.maxDegree = 5;
        const auto outcome =
            core::runMethodology(trace::analyzeByCall(tr), mcfg);
        const auto plan = topo::planFloor(outcome.design);

        const auto generated =
            topo::buildFromDesign(outcome.design, plan);
        const auto crossbar = topo::buildCrossbar(ranks);
        const auto mesh = topo::buildMesh(ranks);
        const auto torus = topo::buildTorus(ranks);

        struct Row
        {
            const char *name;
            const topo::BuiltNetwork *net;
        };
        const Row rows[] = {{"mesh", &mesh},
                            {"torus", &torus},
                            {"crossbar", &crossbar},
                            {"generated", &generated}};

        os << (firstBench ? "" : ",\n") << "    {\"name\": \""
           << trace::benchmarkName(bench) << "\", \"ranks\": " << ranks
           << ", \"networks\": [\n";
        firstBench = false;

        double meshStatic = 0.0;
        double meshActivity = 0.0;
        char buf[512];
        for (std::size_t n = 0; n < std::size(rows); ++n) {
            const auto &row = rows[n];
            const auto res =
                sim::runTrace(tr, *row.net->topo, *row.net->routing);
            const auto stat = topo::computeEnergy(
                *row.net->topo, res.linkFlits, res.execTime);
            const auto act = topo::computeEnergy(
                *row.net->topo, res.linkFlits, res.execTime,
                res.activity, activityModel);
            if (n == 0) {
                meshStatic = stat.total();
                meshActivity = act.total();
            }
            std::snprintf(
                buf, sizeof buf,
                "      {\"name\": \"%s\", "
                "\"static\": {\"dynamic\": %.2f, \"leakage\": %.2f, "
                "\"total\": %.2f, \"vs_mesh\": %.4f}, "
                "\"activity\": {\"dynamic\": %.2f, \"buffer\": %.2f, "
                "\"leakage\": %.2f, \"total\": %.2f, "
                "\"vs_mesh\": %.4f}}%s\n",
                row.name, stat.dynamic(), stat.leakage(), stat.total(),
                stat.total() / meshStatic, act.dynamic(),
                act.bufferDynamic, act.leakage(), act.total(),
                act.total() / meshActivity,
                n + 1 < std::size(rows) ? "," : "");
            os << buf;
        }
        os << "    ]}";
    }
    os << "\n  ]\n}\n";
    if (!out.empty())
        std::fprintf(stderr, "wrote %s\n", out.c_str());
    return 0;
}
