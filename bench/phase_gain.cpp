/**
 * @file
 * Phase-gain study: monolithic vs union vs time-multiplexed designs.
 *
 * Runs the phase evaluator on the five NAS patterns plus one synthetic
 * phase-shift workload (neighbor -> transpose -> hotspot epochs) and
 * emits one JSON document: the full phase report per workload, i.e.
 * detected phases, the three design variants' area / latency / energy,
 * and the explicit reconfiguration overhead of the time-multiplexed
 * variant.
 *
 * Expected shape: the NAS traces are temporally homogeneous — the
 * segmenter finds one phase and time-multiplexing degenerates to the
 * monolithic design plus nothing. The phase-shift trace splits into
 * one phase per epoch, and the time-multiplexed variant beats the
 * monolithic design on area (the fabric only hosts the largest phase
 * network) while paying a visible, reported reconfiguration cost.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>
#include <vector>

#include "phase/evaluator.hpp"
#include "trace/nas_generators.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace minnoc;

namespace {

void
runWorkload(std::ostream &os, const trace::Trace &tr,
            const phase::PhaseEvalConfig &cfg, bool first)
{
    const auto report = phase::evaluatePhases(tr, cfg);
    os << (first ? "" : ",\n") << "    " << report.toJson();
    std::fprintf(stderr,
                 "%s-%u: %zu phase(s); area mono %u / union %u / tm %u, "
                 "exec mono %lld / tm %lld (+%lld reconfig)\n",
                 report.pattern.c_str(), report.ranks,
                 report.phases.size(), report.monolithic.area,
                 report.unionVariant.area, report.timeMultiplexed.area,
                 static_cast<long long>(report.monolithic.execTime),
                 static_cast<long long>(report.timeMultiplexed.execTime),
                 static_cast<long long>(report.reconfigCycles));
}

} // namespace

int
main(int argc, char **argv)
{
    const auto args = cli::Args::parse(
        argc, argv, 1,
        {"ranks", "iterations", "window", "reconfig-cost", "restarts",
         "threads", "out"});

    phase::PhaseEvalConfig cfg;
    cfg.segmenter.windowMessages =
        args.getU32("window", cfg.segmenter.windowMessages);
    cfg.reconfigCost = static_cast<sim::Cycle>(args.getU64(
        "reconfig-cost", static_cast<std::uint64_t>(cfg.reconfigCost)));
    cfg.methodology.partitioner.constraints.maxDegree = 5;
    cfg.methodology.restarts = args.getU32("restarts", 8);
    cfg.threads = args.getU32("threads", 0);

    std::ofstream file;
    const auto out = args.get("out");
    if (!out.empty()) {
        file.open(out);
        if (!file)
            fatal("cannot write '", out, "'");
    }
    std::ostream &os = out.empty() ? std::cout : file;

    os << "{\n  \"benchmark\": \"phase_gain\",\n"
       << "  \"reconfig_cost\": " << cfg.reconfigCost << ",\n"
       << "  \"workloads\": [\n";

    bool first = true;
    for (const auto bench : trace::kAllBenchmarks) {
        trace::NasConfig ncfg;
        ncfg.ranks =
            args.getU32("ranks", trace::largeConfigRanks(bench));
        ncfg.iterations = args.getU32("iterations", 2);
        runWorkload(os, trace::generateBenchmark(bench, ncfg), cfg,
                    first);
        first = false;
    }

    trace::PhaseShiftConfig scfg;
    scfg.ranks = args.getU32("ranks", scfg.ranks);
    runWorkload(os,
                trace::phaseShift({trace::Pattern::Neighbor,
                                   trace::Pattern::Transpose,
                                   trace::Pattern::Hotspot},
                                  scfg),
                cfg, first);

    os << "\n  ]\n}\n";
    return 0;
}
