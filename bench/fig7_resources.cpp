/**
 * @file
 * Figure 7 reproduction: switch and link areas of the generated
 * networks, normalized to the mesh, for all five benchmarks at the 8/9
 * node (a) and 16 node (b) configurations. The torus columns use the
 * analytic folded-torus areas (same switches as mesh, double link
 * area), exactly as the paper derives them.
 */

#include <cstdio>

#include "core/methodology.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;

namespace {

void
runConfig(const char *title, bool large)
{
    std::printf("=== Figure 7(%s): %s ===\n", large ? "b" : "a", title);
    std::printf("%-5s %5s | %9s %9s | %9s %9s | %12s %12s\n", "bench",
                "ranks", "gen sw", "gen lnk", "mesh sw", "mesh lnk",
                "sw vs mesh", "lnk vs mesh");

    for (const auto bench : trace::kAllBenchmarks) {
        const std::uint32_t ranks = large
                                        ? trace::largeConfigRanks(bench)
                                        : trace::smallConfigRanks(bench);
        trace::NasConfig cfg;
        cfg.ranks = ranks;
        cfg.iterations = 2;
        const auto tr = trace::generateBenchmark(bench, cfg);

        core::MethodologyConfig mcfg;
        mcfg.partitioner.constraints.maxDegree = 5;
        const auto outcome =
            core::runMethodology(trace::analyzeByCall(tr), mcfg);
        const auto plan = topo::planFloor(outcome.design);

        const auto [meshSw, meshLk] = topo::meshAreas(ranks);
        const std::uint32_t genSw = plan.switchArea;
        const std::uint32_t genLk = plan.linkArea + plan.procLinkArea;
        std::printf("%-5s %5u | %9u %9u | %9u %9u | %11.0f%% %11.0f%%\n",
                    trace::benchmarkName(bench).c_str(), ranks, genSw,
                    genLk, meshSw, meshLk,
                    100.0 * genSw / meshSw, 100.0 * genLk / meshLk);
    }

    // Torus reference row (identical for every benchmark).
    const std::uint32_t ranks = large ? 16 : 8;
    const auto [meshSw, meshLk] = topo::meshAreas(ranks);
    const auto [torusSw, torusLk] = topo::torusAreas(ranks);
    std::printf("%-5s %5u | %9s %9s | %9u %9u | %11.0f%% %11.0f%%  "
                "(torus reference)\n\n",
                "torus", ranks, "-", "-", torusSw, torusLk,
                100.0 * torusSw / meshSw, 100.0 * torusLk / meshLk);
}

} // namespace

int
main()
{
    std::printf("Generated-network resource comparison "
                "(normalized to mesh = 100%%).\n"
                "Paper shape: generated networks use roughly 40-60%% "
                "of the mesh switch area and\n25-60%% of its link "
                "area; FFT/MG grow denser at 16 nodes; torus doubles "
                "mesh link area.\n\n");
    runConfig("8 / 9 node configurations", false);
    runConfig("16 node configurations", true);
    return 0;
}
