/**
 * @file
 * Figures 2 and 5 reproduction: the design methodology walked through
 * step by step on the CG-16 pattern with a node-degree-5 constraint.
 *
 * First the paper's fixed example cuts (Cut 1 needs four links, Cut 2
 * three, the follow-up move two), then the full automated run with its
 * partition/move/reroute history and the finalized network.
 */

#include <cstdio>

#include "core/design_network.hpp"
#include "core/methodology.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::core;

namespace {

CliqueSet
cgCliques()
{
    trace::NasConfig cfg;
    cfg.ranks = 16;
    cfg.iterations = 1;
    auto ks = trace::analyzeByCall(trace::generateCG(cfg));
    ks.reduceToMaximum();
    return ks;
}

} // namespace

int
main()
{
    std::printf("=== Figures 2 & 5: partitioning walkthrough (CG-16, "
                "max degree 5) ===\n\n");
    CliqueSet ks = cgCliques();

    // --- The paper's manual cuts (Section 3.1, Figure 2). ---
    bool ok = true;
    {
        DesignNetwork net(ks);
        Rng rng(1);
        const SwitchId sj = net.splitSwitch(0, rng);
        for (ProcId p = 0; p < 8; ++p)
            net.moveProc(p, 0);
        for (ProcId p = 8; p < 16; ++p)
            net.moveProc(p, sj);
        const auto cut1 = net.fastColor(PipeKey(0, sj));
        std::printf("Cut 1 (procs 0-7 | 8-15): Fast_Color = %u links "
                    "(paper: 4) %s\n",
                    cut1, cut1 == 4 ? "[ok]" : "[MISMATCH]");
        ok &= cut1 == 4;

        net.moveProc(8, 0); // the paper's "Processor 9" move
        const auto cut2 = net.fastColor(PipeKey(0, sj));
        std::printf("Cut 2 (move proc 8 across): Fast_Color = %u links "
                    "(paper: 3) %s\n",
                    cut2, cut2 == 3 ? "[ok]" : "[MISMATCH]");
        ok &= cut2 == 3;

        net.moveProc(7, sj); // the paper's "Processor 8" move
        const auto cut3 = net.fastColor(PipeKey(0, sj));
        std::printf("Figure 5(b) (move proc 7 back): Fast_Color = %u "
                    "links (paper: 2) %s\n\n",
                    cut3, cut3 == 2 ? "[ok]" : "[MISMATCH]");
        ok &= cut3 == 2;
    }

    // --- The automated run with history (Figure 5(a)-(f)). ---
    MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    const auto outcome = runMethodology(ks, mcfg);

    std::printf("automated run history (%zu steps):\n",
                outcome.history.size());
    std::size_t shown = 0;
    for (const auto &step : outcome.history) {
        const char *kind = "?";
        switch (step.kind) {
          case PartitionStep::Kind::Split:
            kind = "split";
            break;
          case PartitionStep::Kind::Move:
            kind = "move";
            break;
          case PartitionStep::Kind::Reroute:
            kind = "reroute";
            break;
          case PartitionStep::Kind::Finalize:
            kind = "finalize";
            break;
        }
        std::printf("  %-9s %-22s est links %u\n", kind,
                    step.note.c_str(), step.estimatedLinks);
        if (++shown >= 40) {
            std::printf("  ... (%zu more steps)\n",
                        outcome.history.size() - shown);
            break;
        }
    }

    std::printf("\nfinal network (compare Figure 5(f)):\n%s",
                outcome.design.toString().c_str());
    std::printf("constraints met: %s; Theorem-1 violations: %zu\n",
                outcome.constraintsMet ? "yes" : "no",
                outcome.violations.size());
    ok &= outcome.constraintsMet && outcome.violations.empty();
    return ok ? 0 : 1;
}
