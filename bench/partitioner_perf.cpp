/**
 * @file
 * Partitioner performance benchmark: wall time and Fast_Color cache
 * behavior of full methodology runs on the five NAS patterns, emitted
 * as JSON for CI trend tracking.
 *
 * Per pattern it runs the methodology once single-threaded (collecting
 * the Fast_Color call/hit counters of the incremental estimation cache)
 * and once multi-threaded, checks that both produce identical designs,
 * and reports both wall times.
 *
 *   partitioner_perf [--bench all|BT|CG|FFT|MG|SP] [--ranks N]
 *                    [--iterations I] [--restarts R] [--threads T]
 *                    [--seed S] [--max-degree D] [--out FILE]
 *
 * --ranks 0 (default) uses each benchmark's paper "large" config;
 * --threads 0 uses hardware concurrency.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/design_io.hpp"
#include "core/methodology.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"
#include "util/log.hpp"

using namespace minnoc;

namespace {

struct Options
{
    std::string bench = "all";
    std::uint32_t ranks = 0; ///< 0 = paper large config per benchmark
    std::uint32_t iterations = 3;
    std::uint32_t restarts = 16;
    std::uint32_t threads = 0; ///< 0 = hardware concurrency
    std::uint32_t maxDegree = 5;
    std::uint64_t seed = 1;
    std::string out;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string key = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag ", key, " needs a value");
            return argv[++i];
        };
        if (key == "--bench")
            opt.bench = value();
        else if (key == "--ranks")
            opt.ranks = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (key == "--iterations")
            opt.iterations = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (key == "--restarts")
            opt.restarts = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (key == "--threads")
            opt.threads = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (key == "--max-degree")
            opt.maxDegree = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (key == "--seed")
            opt.seed = std::strtoull(value().c_str(), nullptr, 10);
        else if (key == "--out")
            opt.out = value();
        else
            fatal("unknown flag ", key);
    }
    return opt;
}

struct PatternReport
{
    std::string name;
    std::uint32_t ranks = 0;
    double wallMs1t = 0.0;
    double wallMsMt = 0.0;
    std::uint64_t fcCalls = 0;
    std::uint64_t fcHits = 0;
    std::uint32_t links = 0;
    std::uint32_t switches = 0;
    bool constraintsMet = false;
    bool identical = false; ///< 1-thread and N-thread designs match
};

/** One timed methodology run; returns the design + wall milliseconds. */
core::DesignOutcome
timedRun(const core::CliqueSet &ks, const Options &opt,
         std::uint32_t threads, double &wallMs)
{
    core::MethodologyConfig cfg;
    cfg.partitioner.constraints.maxDegree = opt.maxDegree;
    cfg.partitioner.seed = opt.seed;
    cfg.restarts = opt.restarts;
    cfg.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    auto outcome = core::runMethodology(ks, cfg);
    const auto stop = std::chrono::steady_clock::now();
    wallMs = std::chrono::duration<double, std::milli>(stop - start)
                 .count();
    return outcome;
}

PatternReport
runPattern(trace::Benchmark b, const Options &opt,
           std::uint32_t mtThreads)
{
    PatternReport report;
    report.name = trace::benchmarkName(b);
    report.ranks =
        opt.ranks ? opt.ranks : trace::largeConfigRanks(b);

    trace::NasConfig tcfg;
    tcfg.ranks = report.ranks;
    tcfg.iterations = opt.iterations;
    tcfg.seed = opt.seed;
    const auto tr = trace::generateBenchmark(b, tcfg);
    const auto ks = trace::analyzeByCall(tr);

    core::resetFastColorStats();
    const auto outcome1 = timedRun(ks, opt, 1, report.wallMs1t);
    const auto stats = core::fastColorStats();
    report.fcCalls = stats.calls;
    report.fcHits = stats.cacheHits;
    report.links = outcome1.design.totalLinks();
    report.switches = outcome1.design.numSwitches;
    report.constraintsMet = outcome1.constraintsMet;

    const auto outcomeN = timedRun(ks, opt, mtThreads, report.wallMsMt);

    // The wave selection must make the winner thread-count invariant;
    // compare the serialized designs byte for byte.
    std::ostringstream design1;
    std::ostringstream designN;
    core::saveDesign(outcome1.design, design1);
    core::saveDesign(outcomeN.design, designN);
    report.identical = design1.str() == designN.str() &&
                       outcome1.design.totalLinks() ==
                           outcomeN.design.totalLinks();
    if (!report.identical) {
        warn("partitioner_perf: ", report.name, " designs differ "
             "between 1 and ", mtThreads, " threads");
    }
    return report;
}

std::string
toJson(const std::vector<PatternReport> &reports,
       std::uint32_t mtThreads)
{
    std::ostringstream oss;
    oss << "{\n  \"machine_threads\": "
        << std::thread::hardware_concurrency()
        << ",\n  \"bench_threads\": " << mtThreads
        << ",\n  \"patterns\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const auto &r = reports[i];
        const double hitRate =
            r.fcCalls ? static_cast<double>(r.fcHits) /
                            static_cast<double>(r.fcCalls)
                      : 0.0;
        const double speedup =
            r.wallMsMt > 0.0 ? r.wallMs1t / r.wallMsMt : 0.0;
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"name\": \"%s\", \"ranks\": %u, "
            "\"wall_ms_1t\": %.1f, \"wall_ms_mt\": %.1f, "
            "\"speedup_mt_vs_1t\": %.2f, "
            "\"fastcolor_calls\": %llu, "
            "\"fastcolor_cache_hit_rate\": %.4f, "
            "\"links\": %u, \"switches\": %u, "
            "\"constraints_met\": %s, \"identical_designs\": %s}",
            r.name.c_str(), r.ranks, r.wallMs1t, r.wallMsMt, speedup,
            static_cast<unsigned long long>(r.fcCalls), hitRate,
            r.links, r.switches, r.constraintsMet ? "true" : "false",
            r.identical ? "true" : "false");
        oss << buf << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    oss << "  ]\n}\n";
    return oss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    std::uint32_t mtThreads =
        opt.threads ? opt.threads : std::thread::hardware_concurrency();
    if (mtThreads == 0)
        mtThreads = 1;

    std::vector<trace::Benchmark> benches;
    if (opt.bench == "all") {
        benches.assign(std::begin(trace::kAllBenchmarks),
                       std::end(trace::kAllBenchmarks));
    } else {
        benches.push_back(trace::benchmarkFromName(opt.bench));
    }

    std::vector<PatternReport> reports;
    bool allIdentical = true;
    for (const auto b : benches) {
        reports.push_back(runPattern(b, opt, mtThreads));
        const auto &r = reports.back();
        allIdentical &= r.identical;
        std::fprintf(stderr,
                     "%-4s ranks=%u 1t=%.0fms %ut=%.0fms "
                     "fc_calls=%llu hit_rate=%.3f links=%u\n",
                     r.name.c_str(), r.ranks, r.wallMs1t, mtThreads,
                     r.wallMsMt,
                     static_cast<unsigned long long>(r.fcCalls),
                     r.fcCalls ? static_cast<double>(r.fcHits) /
                                     static_cast<double>(r.fcCalls)
                               : 0.0,
                     r.links);
    }

    const std::string json = toJson(reports, mtThreads);
    std::fputs(json.c_str(), stdout);
    if (!opt.out.empty()) {
        std::ofstream os(opt.out);
        if (!os)
            fatal("cannot write '", opt.out, "'");
        os << json;
    }
    return allIdentical ? 0 : 1;
}
