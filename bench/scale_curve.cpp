/**
 * @file
 * Node-axis scale curve: wall time of a full methodology run as the
 * rank count sweeps 64 -> 1024+ on closed-form well-behaved patterns
 * (ring, transpose, 2D nearest-neighbor, grouped rail). Successor of
 * the old `scaling` harness (paper Section 3.3, O(N^2 K L)): the same
 * growth-factor measurement, but on deterministic patterns the
 * hierarchical partitioner targets, every design Theorem-1-verified,
 * and the curve emitted as JSON for CI trend tracking.
 *
 *   scale_curve [--patterns ring,transpose,neighbor,rail]
 *               (also: fan_uni/fan_bi/fan_omni and
 *               dense_uni/dense_bi/dense_omni group-to-group shapes)
 *               [--sizes 64,128,256,512,1024] [--restarts R]
 *               [--threads T] [--max-degree D] [--seed S] [--out FILE]
 *
 * Exit status is nonzero if any produced design has Theorem-1
 * violations — the curve is only meaningful for correct designs.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/methodology.hpp"
#include "trace/scale_patterns.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace minnoc;

namespace {

struct Point
{
    std::string pattern;
    std::uint32_t ranks = 0;
    double wallMs = 0.0;
    double growthVsPrev = 0.0; ///< wall-time ratio vs previous size
    std::uint32_t links = 0;
    std::uint32_t switches = 0;
    std::uint32_t rounds = 0;
    std::uint32_t restartsUsed = 0;
    bool constraintsMet = false;
    bool verified = false; ///< Theorem-1 violation set empty
};

std::vector<std::string>
splitNames(const std::string &text)
{
    std::vector<std::string> names;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            names.push_back(item);
    if (names.empty())
        fatal("--patterns: expected a comma-separated list, got '",
              text, "'");
    return names;
}

std::string
toJson(const std::vector<Point> &points, std::uint32_t threads,
       std::uint32_t restarts)
{
    std::ostringstream oss;
    oss << "{\n  \"machine_threads\": "
        << std::thread::hardware_concurrency()
        << ",\n  \"bench_threads\": " << threads
        << ",\n  \"restarts\": " << restarts << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"pattern\": \"%s\", \"ranks\": %u, "
            "\"wall_ms\": %.1f, \"growth_vs_prev\": %.2f, "
            "\"links\": %u, \"switches\": %u, \"rounds\": %u, "
            "\"restarts_used\": %u, \"constraints_met\": %s, "
            "\"verified\": %s}",
            p.pattern.c_str(), p.ranks, p.wallMs, p.growthVsPrev,
            p.links, p.switches, p.rounds, p.restartsUsed,
            p.constraintsMet ? "true" : "false",
            p.verified ? "true" : "false");
        oss << buf << (i + 1 < points.size() ? "," : "") << "\n";
    }
    oss << "  ]\n}\n";
    return oss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const auto args = cli::Args::parse(
        argc, argv, 1,
        {"patterns", "sizes", "restarts", "threads", "max-degree",
         "seed", "out"});
    const auto patterns =
        splitNames(args.get("patterns", "ring,transpose,neighbor,rail"));
    const auto sizes =
        args.getU32List("sizes", {64, 128, 256, 512, 1024});
    const auto restarts = args.getU32("restarts", 2);
    const auto threads = args.getU32("threads", 0);
    const auto maxDegree = args.getU32("max-degree", 6);
    const auto seed = args.getU64("seed", 1);
    const auto out = args.get("out");

    std::vector<Point> points;
    bool allVerified = true;
    for (const auto &name : patterns) {
        double prevMs = 0.0;
        for (const auto ranks : sizes) {
            const auto ks = trace::makeScalePattern(name, ranks);

            core::MethodologyConfig cfg;
            cfg.partitioner.constraints.maxDegree = maxDegree;
            cfg.partitioner.seed = seed;
            cfg.restarts = restarts;
            cfg.threads = threads;

            const auto start = std::chrono::steady_clock::now();
            const auto outcome = core::runMethodology(ks, cfg);
            const auto stop = std::chrono::steady_clock::now();

            Point p;
            p.pattern = name;
            p.ranks = ranks;
            p.wallMs =
                std::chrono::duration<double, std::milli>(stop - start)
                    .count();
            p.growthVsPrev = prevMs > 0.0 ? p.wallMs / prevMs : 0.0;
            p.links = outcome.design.totalLinks();
            p.switches = outcome.design.numSwitches;
            p.rounds = outcome.rounds;
            p.restartsUsed = outcome.restartsUsed;
            p.constraintsMet = outcome.constraintsMet;
            p.verified = outcome.violations.empty();
            allVerified &= p.verified;
            prevMs = p.wallMs;

            std::fprintf(stderr,
                         "%-9s N=%-5u %8.0fms  x%-5.2f links=%-5u "
                         "switches=%-4u %s%s\n",
                         name.c_str(), ranks, p.wallMs, p.growthVsPrev,
                         p.links, p.switches,
                         p.constraintsMet ? "ok" : "INFEASIBLE",
                         p.verified ? "" : " CONTENTION");
            points.push_back(std::move(p));
        }
    }

    const std::string json = toJson(points, threads, restarts);
    std::fputs(json.c_str(), stdout);
    if (!out.empty()) {
        std::ofstream os(out);
        if (!os)
            fatal("cannot write '", out, "'");
        os << json;
    }
    return allVerified ? 0 : 1;
}
