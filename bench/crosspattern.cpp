/**
 * @file
 * Cross-pattern sensitivity (Section 4.2, closing experiment): run the
 * FFT and BT traces on the network generated for CG-16 and compare
 * against their natively generated networks.
 *
 * Paper shape: FFT transplants onto the CG network almost freely
 * (<2% degradation) because its row/column exchanges resemble CG's
 * reduce pattern, while BT degrades markedly (~20%) — generated
 * networks tolerate moderate pattern drift but are not general.
 */

#include <cstdio>

#include "core/methodology.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;

namespace {

topo::BuiltNetwork
designFor(const trace::Trace &tr)
{
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    const auto outcome =
        core::runMethodology(trace::analyzeByCall(tr), mcfg);
    const auto plan = topo::planFloor(outcome.design);
    return topo::buildFromDesign(outcome.design, plan);
}

} // namespace

int
main()
{
    trace::NasConfig cfg;
    cfg.ranks = 16;
    cfg.iterations = 3;

    const auto cgTrace = trace::generateCG(cfg);
    const auto fftTrace = trace::generateFFT(cfg);
    const auto cgNet = designFor(cgTrace);

    std::printf("=== Cross-pattern sensitivity: foreign traces on the "
                "CG-16 network ===\n\n");
    std::printf("%-18s %14s %14s %10s\n", "workload", "native cycles",
                "on CG net", "degraded");

    // FFT on the CG network vs its own network.
    {
        const auto native = designFor(fftTrace);
        const auto rn =
            sim::runTrace(fftTrace, *native.topo, *native.routing);
        const auto rx =
            sim::runTrace(fftTrace, *cgNet.topo, *cgNet.routing);
        std::printf("%-18s %14lld %14lld %9.1f%%\n", "FFT-16",
                    static_cast<long long>(rn.execTime),
                    static_cast<long long>(rx.execTime),
                    100.0 * (static_cast<double>(rx.execTime) /
                                 static_cast<double>(rn.execTime) -
                             1.0));
    }

    // BT runs on 16 ranks too for this experiment (the paper used its
    // BT trace unchanged; our generator needs a square count, so this
    // reproduction uses the 16-rank 4x4 BT).
    {
        const auto btTrace = trace::generateBT(cfg);
        const auto native = designFor(btTrace);
        const auto rn =
            sim::runTrace(btTrace, *native.topo, *native.routing);
        const auto rx =
            sim::runTrace(btTrace, *cgNet.topo, *cgNet.routing);
        std::printf("%-18s %14lld %14lld %9.1f%%\n", "BT-16",
                    static_cast<long long>(rn.execTime),
                    static_cast<long long>(rx.execTime),
                    100.0 * (static_cast<double>(rx.execTime) /
                                 static_cast<double>(rn.execTime) -
                             1.0));
    }

    // Mesh reference for the BT-on-CG comparison ("only slightly worse
    // than mesh").
    {
        const auto btTrace = trace::generateBT(cfg);
        const auto mesh = topo::buildMesh(16);
        const auto rm =
            sim::runTrace(btTrace, *mesh.topo, *mesh.routing);
        const auto rx =
            sim::runTrace(btTrace, *cgNet.topo, *cgNet.routing);
        std::printf("%-18s %14lld %14lld %9.1f%%  (BT: CG net vs "
                    "mesh)\n",
                    "BT-16 mesh ref", static_cast<long long>(rm.execTime),
                    static_cast<long long>(rx.execTime),
                    100.0 * (static_cast<double>(rx.execTime) /
                                 static_cast<double>(rm.execTime) -
                             1.0));
    }

    std::printf("\npaper shape: FFT degrades little on the CG network; "
                "BT degrades much more,\nending near (slightly worse "
                "than) the mesh.\n");
    return 0;
}
