/**
 * @file
 * Open-loop load-latency curves — the standard NoC evaluation the
 * library supports beyond the paper's trace-driven methodology.
 *
 * For each topology, sweep offered load under uniform-random and
 * transpose traffic and report average packet latency; the crossbar
 * saturates last, the mesh first, and the CG-generated network (built
 * for a different pattern!) sits in between, degrading gracefully on
 * traffic it was never designed for thanks to the BFS fallback routes.
 */

#include <cstdio>

#include "core/methodology.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"
#include "trace/synthetic.hpp"

using namespace minnoc;

int
main()
{
    constexpr std::uint32_t kRanks = 16;

    // Build the four networks once.
    const auto crossbar = topo::buildCrossbar(kRanks);
    const auto mesh = topo::buildMesh(kRanks);
    const auto torus = topo::buildTorus(kRanks);
    trace::NasConfig ncfg;
    ncfg.ranks = kRanks;
    ncfg.iterations = 1;
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    const auto outcome = core::runMethodology(
        trace::analyzeByCall(trace::generateCG(ncfg)), mcfg);
    const auto plan = topo::planFloor(outcome.design);
    const auto generated = topo::buildFromDesign(outcome.design, plan);

    struct Net
    {
        const char *name;
        const topo::BuiltNetwork *net;
    };
    const Net nets[] = {{"crossbar", &crossbar},
                        {"mesh", &mesh},
                        {"torus", &torus},
                        {"generated(CG)", &generated}};

    for (const auto pattern :
         {trace::Pattern::UniformRandom, trace::Pattern::Transpose}) {
        std::printf("=== %s traffic, %u nodes, 64B packets ===\n",
                    trace::patternName(pattern).c_str(), kRanks);
        std::printf("%-8s", "load");
        for (const auto &n : nets)
            std::printf(" %14s", n.name);
        std::printf("   (avg packet latency, cycles)\n");

        for (const double load : {0.05, 0.1, 0.2, 0.3, 0.5, 0.7}) {
            trace::SyntheticConfig scfg;
            scfg.ranks = kRanks;
            scfg.pattern = pattern;
            scfg.load = load;
            scfg.slots = 150;
            const auto tr = trace::generateSynthetic(scfg);

            std::printf("%-8.2f", load);
            for (const auto &n : nets) {
                const auto res =
                    sim::runTrace(tr, *n.net->topo, *n.net->routing);
                std::printf(" %14.1f", res.avgPacketLatency);
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf(
        "expected shape: on uniform traffic the generated network (46%% "
        "of mesh links)\ndegrades fastest and the crossbar stays flat; "
        "on transpose traffic the generated\nnetwork is almost "
        "crossbar-flat — CG's clique set contains the matrix transpose, "
        "so\nthe network was literally designed for it, while the mesh "
        "contends.\n");
    return 0;
}
