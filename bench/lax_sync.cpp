/**
 * @file
 * Lax-sync and distributed-exploration speedup study.
 *
 * Part 1 — bounded-slack credit sync (`SimConfig::laxSyncSlack`): on
 * credit-starved configurations (1 VC, depth-1 buffers) sweep the
 * slack window over ring and transpose replays on three networks and
 * report, per setting, the wall-time speedup over the strict
 * simulator and the observed latency/energy deviation. The networks
 * span the wire-delay axis that decides whether relaxation can bite:
 * a mesh (every wire 1 cycle — a credit generated at T is consumable
 * at T+1 in both modes, so lax-sync is provably exact there), a torus
 * (folded wrap wires, 2 cycles), and the floorplan-built design the
 * methodology synthesizes for the pattern (multi-tile wires). Per
 * flit the relaxation saves at most min(slack, delay - 1) stall
 * cycles; across a credit-limited multi-flit packet those savings
 * accumulate, so the per-packet deviation columns GROW with slack and
 * packet depth — that curve is the error model quoted in DESIGN.md.
 *
 * Part 2 — `minnoc explore --workers N`: the same 16-job sweep run
 * in-process and through 1 and 4 forked workers (cache off, so every
 * job pays full synthesis cost), asserting byte-identical reports and
 * recording the wall-time speedup.
 *
 *   lax_sync [--ranks N] [--slacks 1,2,4,8,16,32] [--bytes B]
 *            [--iterations I] [--workers W] [--skip-dist 0|1]
 *            [--out FILE]
 *
 * Output is one JSON document tagged "benchmark": "lax_sync" for CI
 * trend tracking. Exit status is nonzero if a delay-1 (mesh) lax run
 * deviates from strict at all — exactness there is a theorem, not a
 * tuning result — or if a distributed report differs from the
 * in-process bytes.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/methodology.hpp"
#include "dist/coordinator.hpp"
#include "dse/explorer.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "topo/power.hpp"
#include "trace/scale_patterns.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace minnoc;

namespace {

double
wallMs(const std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct LaxPoint
{
    std::string pattern;
    std::string network;
    sim::Cycle slack = 0;
    double wallMsStrict = 0.0;
    double wallMsLax = 0.0;
    double speedup = 0.0;
    sim::Cycle execStrict = 0;
    sim::Cycle execLax = 0;
    double latencyStrict = 0.0;
    double latencyLax = 0.0;
    double latencyErrorCycles = 0.0; ///< |lax - strict| mean latency
    double energyErrorFrac = 0.0;    ///< |lax - strict| / strict
    bool exact = false;              ///< lax run matched strict
};

} // namespace

int
main(int argc, char **argv)
{
    const auto args = cli::Args::parse(
        argc, argv, 1,
        {"ranks", "slacks", "bytes", "iterations", "workers",
         "skip-dist", "out"});
    const auto ranks = args.getU32("ranks", 64);
    const auto slacks = args.getU64List("slacks", {1, 2, 4, 8, 16, 32});
    const auto bytes = args.getU64("bytes", 4096);
    const auto iterations = args.getU32("iterations", 2);
    const auto workers = args.getU32("workers", 4);
    const auto skipDist = args.getU32("skip-dist", 0) != 0;
    const auto out = args.get("out");

    // Depth-1 single-VC buffers keep every sender on the credit
    // round-trip critical path — the regime lax-sync accelerates.
    sim::SimConfig strictCfg;
    strictCfg.numVcs = 1;
    strictCfg.vcDepth = 1;

    bool meshExact = true;
    std::vector<LaxPoint> points;
    for (const std::string pattern : {"ring", "transpose"}) {
        const auto ks = trace::makeScalePattern(pattern, ranks);
        const auto tr =
            trace::traceFromCliques(ks, pattern, bytes, iterations);

        // Third network: the floorplan-built design the methodology
        // synthesizes for this exact pattern — its multi-tile wires
        // are where bounded-slack credit returns actually pay off.
        core::MethodologyConfig mcfg;
        mcfg.partitioner.constraints.maxDegree = 5;
        mcfg.restarts = 2;
        mcfg.threads = 1;
        const auto outcome = core::runMethodology(ks, mcfg);
        const auto plan = topo::planFloor(outcome.design);
        const auto generated =
            topo::buildFromDesign(outcome.design, plan);

        const auto mesh = topo::buildMesh(ranks);
        const auto torus = topo::buildTorus(ranks);
        const struct
        {
            const char *name;
            const topo::BuiltNetwork *net;
        } nets[] = {{"mesh", &mesh},
                    {"torus", &torus},
                    {"generated", &generated}};

        for (const auto &n : nets) {
            const auto t0 = std::chrono::steady_clock::now();
            const auto strict = sim::runTrace(tr, *n.net->topo,
                                              *n.net->routing,
                                              strictCfg);
            const auto strictMs = wallMs(t0);
            const auto strictEnergy =
                topo::computeEnergy(*n.net->topo, strict.linkFlits,
                                    static_cast<std::int64_t>(
                                        strict.execTime))
                    .total();

            for (const auto slack : slacks) {
                auto laxCfg = strictCfg;
                laxCfg.laxSyncSlack = static_cast<sim::Cycle>(slack);
                const auto t1 = std::chrono::steady_clock::now();
                const auto lax = sim::runTrace(tr, *n.net->topo,
                                               *n.net->routing,
                                               laxCfg);
                const auto laxMs = wallMs(t1);
                const auto laxEnergy =
                    topo::computeEnergy(*n.net->topo, lax.linkFlits,
                                        static_cast<std::int64_t>(
                                            lax.execTime))
                        .total();

                LaxPoint p;
                p.pattern = pattern;
                p.network = n.name;
                p.slack = static_cast<sim::Cycle>(slack);
                p.wallMsStrict = strictMs;
                p.wallMsLax = laxMs;
                p.speedup = laxMs > 0.0 ? strictMs / laxMs : 0.0;
                p.execStrict = strict.execTime;
                p.execLax = lax.execTime;
                p.latencyStrict = strict.avgPacketLatency;
                p.latencyLax = lax.avgPacketLatency;
                p.latencyErrorCycles =
                    p.latencyLax > p.latencyStrict
                        ? p.latencyLax - p.latencyStrict
                        : p.latencyStrict - p.latencyLax;
                p.energyErrorFrac =
                    strictEnergy > 0.0
                        ? (laxEnergy > strictEnergy
                               ? laxEnergy - strictEnergy
                               : strictEnergy - laxEnergy) /
                              strictEnergy
                        : 0.0;
                p.exact = p.execStrict == p.execLax &&
                          p.latencyErrorCycles == 0.0;
                if (std::string(n.name) == "mesh")
                    meshExact &= p.exact;

                std::fprintf(
                    stderr,
                    "%-9s %-9s slack=%-4llu exec %llu -> %llu  "
                    "lat err %.2f cyc  energy err %.4f%%\n",
                    pattern.c_str(), n.name,
                    static_cast<unsigned long long>(slack),
                    static_cast<unsigned long long>(p.execStrict),
                    static_cast<unsigned long long>(p.execLax),
                    p.latencyErrorCycles, 100.0 * p.energyErrorFrac);
                points.push_back(std::move(p));
            }
        }
    }

    // Part 2: distributed exploration wall-time speedup on a 16-job
    // grid, cache off so each job pays full synthesis cost.
    double distBaseMs = 0.0, distW1Ms = 0.0, distWNMs = 0.0;
    double distSpeedup = 0.0;
    bool distIdentical = true;
    if (!skipDist) {
        const auto tr = trace::traceFromCliques(
            trace::makeScalePattern("transpose", 16), "transpose", 1024,
            1);
        dse::ExploreConfig cfg;
        cfg.grid.maxDegrees = {4, 5};
        cfg.grid.restarts = {4};
        cfg.grid.seeds = {1, 2};
        cfg.grid.vcs = {2, 3};
        cfg.grid.unidirectional = {0, 1};
        cfg.grid.phaseWindows = {0};
        cfg.useCache = false;
        cfg.threads = 1;

        const auto t0 = std::chrono::steady_clock::now();
        const auto base = dse::explore(tr, cfg);
        distBaseMs = wallMs(t0);

        dist::DistOptions one;
        one.workers = 1;
        const auto t1 = std::chrono::steady_clock::now();
        const auto w1 = dist::exploreDistributed(tr, cfg, one);
        distW1Ms = wallMs(t1);

        dist::DistOptions many;
        many.workers = workers;
        const auto t2 = std::chrono::steady_clock::now();
        const auto wn = dist::exploreDistributed(tr, cfg, many);
        distWNMs = wallMs(t2);

        distIdentical = base.toJson() == w1.toJson() &&
                        base.toJson() == wn.toJson();
        distSpeedup = distWNMs > 0.0 ? distW1Ms / distWNMs : 0.0;
        std::fprintf(stderr,
                     "dist: in-process %.0fms, 1 worker %.0fms, "
                     "%u workers %.0fms -> x%.2f%s\n",
                     distBaseMs, distW1Ms, workers, distWNMs,
                     distSpeedup,
                     distIdentical ? "" : "  REPORTS DIFFER");
    }

    std::ostringstream oss;
    oss << "{\n  \"benchmark\": \"lax_sync\",\n  \"ranks\": " << ranks
        << ",\n  \"machine_threads\": "
        << std::thread::hardware_concurrency() << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"pattern\": \"%s\", \"network\": \"%s\", "
            "\"slack\": %llu, \"speedup\": %.2f, "
            "\"exec_strict\": %llu, \"exec_lax\": %llu, "
            "\"latency_error_cycles\": %.2f, "
            "\"energy_error_frac\": %.6f, \"exact\": %s}",
            p.pattern.c_str(), p.network.c_str(),
            static_cast<unsigned long long>(p.slack), p.speedup,
            static_cast<unsigned long long>(p.execStrict),
            static_cast<unsigned long long>(p.execLax),
            p.latencyErrorCycles, p.energyErrorFrac,
            p.exact ? "true" : "false");
        oss << buf << (i + 1 < points.size() ? "," : "") << "\n";
    }
    oss << "  ],\n  \"dist\": {\"workers\": " << workers
        << ", \"in_process_ms\": " << distBaseMs
        << ", \"one_worker_ms\": " << distW1Ms << ", \"n_worker_ms\": "
        << distWNMs << ", \"speedup\": " << distSpeedup
        << ", \"byte_identical\": "
        << (distIdentical ? "true" : "false") << "}\n}\n";

    const auto json = oss.str();
    std::fputs(json.c_str(), stdout);
    if (!out.empty()) {
        std::ofstream os(out);
        if (!os)
            fatal("cannot write '", out, "'");
        os << json;
    }
    return meshExact && distIdentical ? 0 : 1;
}
