/**
 * @file
 * Design-space frontiers for the five NAS patterns vs the baselines.
 *
 * Runs the DSE explorer's default grid (degree x directionality x VCs,
 * 12 points) on every NAS benchmark and emits one JSON document per
 * run: the full explore report (all points, dominated flags, frontier)
 * per pattern, next to the crossbar / mesh / torus baselines evaluated
 * on the same trace (simulated latency, execution time, energy, and
 * the analytic area models). Jobs go through the shared result cache,
 * so re-running the bench after an exploration of the same traces is
 * nearly free.
 *
 * Expected shape: every generated frontier point beats the mesh on
 * area; the crossbar bounds latency from below at quadratic area; the
 * frontier exposes the degree knob as a genuine area/performance
 * trade-off (looser degree -> fewer, busier switches).
 */

#include <cstdio>
#include <fstream>
#include <ostream>

#include "dse/explorer.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "topo/power.hpp"
#include "trace/nas_generators.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace minnoc;

namespace {

struct BaselineRow
{
    const char *name;
    std::uint32_t switchArea;
    std::uint32_t linkArea;
    sim::SimResult res;
    double energy;
};

BaselineRow
runBaseline(const char *name, const trace::Trace &tr,
            const topo::BuiltNetwork &net, std::uint32_t switchArea,
            std::uint32_t linkArea)
{
    BaselineRow row{name, switchArea, linkArea, {}, 0.0};
    row.res = sim::runTrace(tr, *net.topo, *net.routing);
    row.energy = topo::computeEnergy(*net.topo, row.res.linkFlits,
                                     row.res.execTime)
                     .total();
    return row;
}

void
emitBaseline(std::ostream &os, const BaselineRow &row, bool last)
{
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "        {\"name\": \"%s\", \"switch_area\": %u, "
        "\"link_area\": %u, \"exec_time\": %lld, "
        "\"avg_latency\": %.17g, \"avg_hops\": %.17g, "
        "\"energy\": %.17g}%s\n",
        row.name, row.switchArea, row.linkArea,
        static_cast<long long>(row.res.execTime),
        row.res.avgPacketLatency, row.res.avgPacketHops, row.energy,
        last ? "" : ",");
    os << buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto args = cli::Args::parse(
        argc, argv, 1,
        {"ranks", "iterations", "threads", "cache-dir", "cache", "out"});
    const std::uint32_t iterations = args.getU32("iterations", 2);

    dse::ExploreConfig cfg;
    cfg.threads = args.getU32("threads", 0);
    cfg.cacheDir = args.get("cache-dir");
    cfg.useCache = args.getU32("cache", 1) != 0;

    std::ofstream file;
    const auto out = args.get("out");
    if (!out.empty()) {
        file.open(out);
        if (!file)
            fatal("cannot write '", out, "'");
    }
    std::ostream &os = out.empty() ? std::cout : file;

    os << "{\n  \"benchmark\": \"dse_frontier\",\n"
       << "  \"iterations\": " << iterations << ",\n"
       << "  \"patterns\": [\n";

    bool firstPattern = true;
    for (const auto bench : trace::kAllBenchmarks) {
        trace::NasConfig ncfg;
        ncfg.ranks = args.getU32(
            "ranks", trace::largeConfigRanks(bench));
        ncfg.iterations = iterations;
        const auto tr = trace::generateBenchmark(bench, ncfg);
        const auto ranks = tr.numRanks();

        const auto [meshSw, meshLk] = topo::meshAreas(ranks);
        const auto [torusSw, torusLk] = topo::torusAreas(ranks);
        // Crossbar area model: an N-port non-blocking crossbar costs
        // N^2/25 five-port-switch equivalents (quadratic port
        // scaling); processors attach directly, so zero link area.
        const auto xbarSw =
            std::max(1u, ranks * ranks / 25u);
        const BaselineRow baselines[] = {
            runBaseline("crossbar", tr, topo::buildCrossbar(ranks),
                        xbarSw, 0),
            runBaseline("mesh", tr, topo::buildMesh(ranks), meshSw,
                        meshLk),
            runBaseline("torus", tr, topo::buildTorus(ranks), torusSw,
                        torusLk),
        };

        const auto report = dse::explore(tr, cfg);

        os << (firstPattern ? "" : ",\n") << "    {\n      \"name\": \""
           << trace::benchmarkName(bench) << "\",\n      \"ranks\": "
           << ranks << ",\n      \"baselines\": [\n";
        for (std::size_t b = 0; b < std::size(baselines); ++b)
            emitBaseline(os, baselines[b],
                         b + 1 == std::size(baselines));
        os << "      ],\n      \"explore\": " << report.toJson()
           << "    }";
        firstPattern = false;

        std::fprintf(stderr,
                     "%s-%u: %zu points, %zu on frontier, cache "
                     "%zu/%zu hits\n",
                     trace::benchmarkName(bench).c_str(), ranks,
                     report.points.size(), report.frontier.size(),
                     report.cacheHits,
                     report.cacheHits + report.cacheMisses);
    }
    os << "\n  ]\n}\n";
    return 0;
}
