/**
 * @file
 * Ablations of the methodology's design choices (DESIGN.md section 5):
 *
 *  1. Fast_Color bound quality: compare the clique-based lower bound
 *     against DSATUR and exact chromatic numbers on every pipe conflict
 *     graph of the generated benchmark designs (the paper claims the
 *     bound is a tight estimate).
 *  2. Route optimization ablation: total links with Best_Route and
 *     global consolidation disabled vs enabled.
 */

#include <cstdio>

#include "core/methodology.hpp"
#include "graph/coloring.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::core;

namespace {

/** Harvest pipe conflict graphs from a finalized design and compare
 * coloring bounds on each. */
void
boundQuality()
{
    std::printf("=== Ablation 1: Fast_Color bound vs formal coloring "
                "===\n\n");
    std::printf("%-6s %6s | %10s %10s %10s | %s\n", "bench", "pipes",
                "fast=exact", "fast<exact", "max gap", "graphs");

    for (const auto bench : trace::kAllBenchmarks) {
        trace::NasConfig cfg;
        cfg.ranks = trace::largeConfigRanks(bench);
        cfg.iterations = 1;
        const auto tr = trace::generateBenchmark(bench, cfg);
        auto ks = trace::analyzeByCall(tr);
        ks.reduceToMaximum();

        MethodologyConfig mcfg;
        mcfg.partitioner.constraints.maxDegree = 5;
        const auto outcome = runMethodology(ks, mcfg);

        std::size_t equal = 0;
        std::size_t below = 0;
        std::uint32_t maxGap = 0;
        std::size_t graphs = 0;
        for (const auto &pipe : outcome.design.pipes) {
            if (pipe.connectivityOnly)
                continue;
            // Rebuild each direction's conflict graph from the design.
            for (const auto dir : {&pipe.fwdLink, &pipe.bwdLink}) {
                std::vector<CommId> ids;
                for (const auto &[c, link] : *dir)
                    ids.push_back(c);
                if (ids.empty())
                    continue;
                graph::Ugraph cg(ids.size());
                std::uint32_t fast = 0;
                // Fast bound: max clique-set intersection.
                for (const auto &k : ks.cliques()) {
                    std::uint32_t common = 0;
                    for (std::size_t i = 0; i < ids.size(); ++i) {
                        if (k.contains(ids[i]))
                            ++common;
                    }
                    fast = std::max(fast, common);
                }
                for (std::size_t i = 0; i < ids.size(); ++i) {
                    for (std::size_t j = i + 1; j < ids.size(); ++j) {
                        if (ks.contend(ids[i], ids[j]))
                            cg.addEdge(static_cast<graph::NodeId>(i),
                                       static_cast<graph::NodeId>(j));
                    }
                }
                const auto exact = graph::exactColoring(cg);
                ++graphs;
                if (fast == exact.numColors)
                    ++equal;
                else
                    ++below;
                maxGap = std::max(maxGap, exact.numColors - fast);
            }
        }
        std::printf("%-6s %6zu | %10zu %10zu %10u | %zu\n",
                    trace::benchmarkName(bench).c_str(),
                    outcome.design.pipes.size(), equal, below, maxGap,
                    graphs);
    }
    std::printf("\n(fast=exact everywhere means the lower bound is "
                "tight, as the paper claims)\n\n");
}

/** Total links with pieces of the optimizer turned off. */
void
optimizerAblation()
{
    std::printf("=== Ablation 2: route optimization stages ===\n\n");
    std::printf("%-6s | %10s %12s %12s\n", "bench", "full",
                "no consol.", "no BestRoute");

    for (const auto bench : trace::kAllBenchmarks) {
        trace::NasConfig cfg;
        cfg.ranks = trace::smallConfigRanks(bench);
        cfg.iterations = 1;
        const auto tr = trace::generateBenchmark(bench, cfg);
        const auto ks = trace::analyzeByCall(tr);

        auto linksWith = [&](bool consolidate, bool bestRoute) {
            MethodologyConfig mcfg;
            mcfg.partitioner.constraints.maxDegree = 5;
            mcfg.partitioner.consolidate = consolidate;
            mcfg.partitioner.optimizeRoutes = bestRoute;
            mcfg.restarts = 4;
            const auto outcome = runMethodology(ks, mcfg);
            return std::pair<std::uint32_t, bool>(
                outcome.design.totalLinks(), outcome.constraintsMet);
        };

        const auto [full, fullOk] = linksWith(true, true);
        const auto [noCons, noConsOk] = linksWith(false, true);
        const auto [noBr, noBrOk] = linksWith(true, false);
        std::printf("%-6s | %8u%s %10u%s %10u%s\n",
                    trace::benchmarkName(bench).c_str(), full,
                    fullOk ? "  " : "!!", noCons, noConsOk ? "  " : "!!",
                    noBr, noBrOk ? "  " : "!!");
    }
    std::printf("\n('!!' marks runs where the degree-5 constraint "
                "could not be met)\n");
}

/** Duplex vs unidirectional provisioning (paper footnote 1). */
void
unidirectionalAblation()
{
    std::printf("\n=== Ablation 3: duplex vs unidirectional links ===\n\n");
    std::printf("%-14s | %10s %10s | %12s\n", "pattern",
                "duplex ch.", "uni ch.", "saved");

    auto channels = [](const core::FinalizedDesign &d) {
        std::uint32_t total = 0;
        for (const auto &p : d.pipes)
            total += p.linksFwd + p.linksBwd;
        return total;
    };
    auto runBoth = [&](const char *name, const CliqueSet &ks) {
        MethodologyConfig base;
        base.partitioner.constraints.maxDegree = 5;
        base.restarts = 8;
        MethodologyConfig uni = base;
        uni.finalize.unidirectional = true;
        const auto d = runMethodology(ks, base);
        const auto u = runMethodology(ks, uni);
        const auto dc = channels(d.design);
        const auto uc = channels(u.design);
        std::printf("%-14s | %10u %10u | %11.0f%%\n", name, dc, uc,
                    100.0 * (1.0 - static_cast<double>(uc) /
                                       static_cast<double>(dc)));
    };

    // Fully asymmetric pattern: one-way ring.
    {
        CliqueSet ring(16);
        std::vector<Comm> comms;
        for (ProcId p = 0; p < 16; ++p)
            comms.emplace_back(p, static_cast<ProcId>((p + 1) % 16));
        ring.addClique(comms);
        runBoth("one-way ring", ring);
    }
    // Symmetric benchmark: little to gain.
    {
        trace::NasConfig cfg;
        cfg.ranks = 16;
        cfg.iterations = 1;
        runBoth("CG-16", trace::analyzeByCall(trace::generateCG(cfg)));
    }
    std::printf(
        "\n(symmetric exchanges gain nothing by construction; the "
        "one-way ring sheds ~10%%\nwith asymmetry-priced routing — "
        "the contiguous-placement optimum would be 50%%,\nbut "
        "placement search is still duplex-driven; see DESIGN.md 5b)\n");
}

} // namespace

int
main()
{
    boundQuality();
    optimizerAblation();
    unidirectionalAblation();
    return 0;
}
