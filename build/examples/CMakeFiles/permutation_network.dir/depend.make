# Empty dependencies file for permutation_network.
# This may be replaced when dependencies are built.
