file(REMOVE_RECURSE
  "CMakeFiles/permutation_network.dir/permutation_network.cpp.o"
  "CMakeFiles/permutation_network.dir/permutation_network.cpp.o.d"
  "permutation_network"
  "permutation_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permutation_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
