file(REMOVE_RECURSE
  "CMakeFiles/design_from_trace.dir/design_from_trace.cpp.o"
  "CMakeFiles/design_from_trace.dir/design_from_trace.cpp.o.d"
  "design_from_trace"
  "design_from_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_from_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
