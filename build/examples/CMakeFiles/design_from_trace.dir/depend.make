# Empty dependencies file for design_from_trace.
# This may be replaced when dependencies are built.
