# Empty dependencies file for minnoc_graph.
# This may be replaced when dependencies are built.
