file(REMOVE_RECURSE
  "libminnoc_graph.a"
)
