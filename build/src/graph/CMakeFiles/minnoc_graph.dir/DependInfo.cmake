
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/clique.cpp" "src/graph/CMakeFiles/minnoc_graph.dir/clique.cpp.o" "gcc" "src/graph/CMakeFiles/minnoc_graph.dir/clique.cpp.o.d"
  "/root/repo/src/graph/coloring.cpp" "src/graph/CMakeFiles/minnoc_graph.dir/coloring.cpp.o" "gcc" "src/graph/CMakeFiles/minnoc_graph.dir/coloring.cpp.o.d"
  "/root/repo/src/graph/connectivity.cpp" "src/graph/CMakeFiles/minnoc_graph.dir/connectivity.cpp.o" "gcc" "src/graph/CMakeFiles/minnoc_graph.dir/connectivity.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/graph/CMakeFiles/minnoc_graph.dir/digraph.cpp.o" "gcc" "src/graph/CMakeFiles/minnoc_graph.dir/digraph.cpp.o.d"
  "/root/repo/src/graph/ugraph.cpp" "src/graph/CMakeFiles/minnoc_graph.dir/ugraph.cpp.o" "gcc" "src/graph/CMakeFiles/minnoc_graph.dir/ugraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
