file(REMOVE_RECURSE
  "CMakeFiles/minnoc_graph.dir/clique.cpp.o"
  "CMakeFiles/minnoc_graph.dir/clique.cpp.o.d"
  "CMakeFiles/minnoc_graph.dir/coloring.cpp.o"
  "CMakeFiles/minnoc_graph.dir/coloring.cpp.o.d"
  "CMakeFiles/minnoc_graph.dir/connectivity.cpp.o"
  "CMakeFiles/minnoc_graph.dir/connectivity.cpp.o.d"
  "CMakeFiles/minnoc_graph.dir/digraph.cpp.o"
  "CMakeFiles/minnoc_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/minnoc_graph.dir/ugraph.cpp.o"
  "CMakeFiles/minnoc_graph.dir/ugraph.cpp.o.d"
  "libminnoc_graph.a"
  "libminnoc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minnoc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
