file(REMOVE_RECURSE
  "CMakeFiles/minnoc_trace.dir/analyzer.cpp.o"
  "CMakeFiles/minnoc_trace.dir/analyzer.cpp.o.d"
  "CMakeFiles/minnoc_trace.dir/nas_generators.cpp.o"
  "CMakeFiles/minnoc_trace.dir/nas_generators.cpp.o.d"
  "CMakeFiles/minnoc_trace.dir/synthetic.cpp.o"
  "CMakeFiles/minnoc_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/minnoc_trace.dir/trace.cpp.o"
  "CMakeFiles/minnoc_trace.dir/trace.cpp.o.d"
  "libminnoc_trace.a"
  "libminnoc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minnoc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
