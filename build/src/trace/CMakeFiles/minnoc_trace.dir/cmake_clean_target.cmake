file(REMOVE_RECURSE
  "libminnoc_trace.a"
)
