# Empty dependencies file for minnoc_trace.
# This may be replaced when dependencies are built.
