
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/builders.cpp" "src/topo/CMakeFiles/minnoc_topo.dir/builders.cpp.o" "gcc" "src/topo/CMakeFiles/minnoc_topo.dir/builders.cpp.o.d"
  "/root/repo/src/topo/deadlock_analysis.cpp" "src/topo/CMakeFiles/minnoc_topo.dir/deadlock_analysis.cpp.o" "gcc" "src/topo/CMakeFiles/minnoc_topo.dir/deadlock_analysis.cpp.o.d"
  "/root/repo/src/topo/dot.cpp" "src/topo/CMakeFiles/minnoc_topo.dir/dot.cpp.o" "gcc" "src/topo/CMakeFiles/minnoc_topo.dir/dot.cpp.o.d"
  "/root/repo/src/topo/floorplan.cpp" "src/topo/CMakeFiles/minnoc_topo.dir/floorplan.cpp.o" "gcc" "src/topo/CMakeFiles/minnoc_topo.dir/floorplan.cpp.o.d"
  "/root/repo/src/topo/power.cpp" "src/topo/CMakeFiles/minnoc_topo.dir/power.cpp.o" "gcc" "src/topo/CMakeFiles/minnoc_topo.dir/power.cpp.o.d"
  "/root/repo/src/topo/routing.cpp" "src/topo/CMakeFiles/minnoc_topo.dir/routing.cpp.o" "gcc" "src/topo/CMakeFiles/minnoc_topo.dir/routing.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/topo/CMakeFiles/minnoc_topo.dir/topology.cpp.o" "gcc" "src/topo/CMakeFiles/minnoc_topo.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/minnoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/minnoc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
