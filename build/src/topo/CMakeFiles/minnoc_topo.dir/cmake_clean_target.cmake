file(REMOVE_RECURSE
  "libminnoc_topo.a"
)
