# Empty compiler generated dependencies file for minnoc_topo.
# This may be replaced when dependencies are built.
