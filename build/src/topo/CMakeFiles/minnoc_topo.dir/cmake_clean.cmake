file(REMOVE_RECURSE
  "CMakeFiles/minnoc_topo.dir/builders.cpp.o"
  "CMakeFiles/minnoc_topo.dir/builders.cpp.o.d"
  "CMakeFiles/minnoc_topo.dir/deadlock_analysis.cpp.o"
  "CMakeFiles/minnoc_topo.dir/deadlock_analysis.cpp.o.d"
  "CMakeFiles/minnoc_topo.dir/dot.cpp.o"
  "CMakeFiles/minnoc_topo.dir/dot.cpp.o.d"
  "CMakeFiles/minnoc_topo.dir/floorplan.cpp.o"
  "CMakeFiles/minnoc_topo.dir/floorplan.cpp.o.d"
  "CMakeFiles/minnoc_topo.dir/power.cpp.o"
  "CMakeFiles/minnoc_topo.dir/power.cpp.o.d"
  "CMakeFiles/minnoc_topo.dir/routing.cpp.o"
  "CMakeFiles/minnoc_topo.dir/routing.cpp.o.d"
  "CMakeFiles/minnoc_topo.dir/topology.cpp.o"
  "CMakeFiles/minnoc_topo.dir/topology.cpp.o.d"
  "libminnoc_topo.a"
  "libminnoc_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minnoc_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
