file(REMOVE_RECURSE
  "libminnoc_sim.a"
)
