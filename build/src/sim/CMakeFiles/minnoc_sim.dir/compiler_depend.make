# Empty compiler generated dependencies file for minnoc_sim.
# This may be replaced when dependencies are built.
