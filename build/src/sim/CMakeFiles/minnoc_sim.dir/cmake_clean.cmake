file(REMOVE_RECURSE
  "CMakeFiles/minnoc_sim.dir/network.cpp.o"
  "CMakeFiles/minnoc_sim.dir/network.cpp.o.d"
  "CMakeFiles/minnoc_sim.dir/trace_driver.cpp.o"
  "CMakeFiles/minnoc_sim.dir/trace_driver.cpp.o.d"
  "libminnoc_sim.a"
  "libminnoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minnoc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
