# Empty dependencies file for minnoc_core.
# This may be replaced when dependencies are built.
