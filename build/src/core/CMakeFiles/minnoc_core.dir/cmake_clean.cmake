file(REMOVE_RECURSE
  "CMakeFiles/minnoc_core.dir/clique_set.cpp.o"
  "CMakeFiles/minnoc_core.dir/clique_set.cpp.o.d"
  "CMakeFiles/minnoc_core.dir/comm_pattern.cpp.o"
  "CMakeFiles/minnoc_core.dir/comm_pattern.cpp.o.d"
  "CMakeFiles/minnoc_core.dir/design_io.cpp.o"
  "CMakeFiles/minnoc_core.dir/design_io.cpp.o.d"
  "CMakeFiles/minnoc_core.dir/design_network.cpp.o"
  "CMakeFiles/minnoc_core.dir/design_network.cpp.o.d"
  "CMakeFiles/minnoc_core.dir/finalize.cpp.o"
  "CMakeFiles/minnoc_core.dir/finalize.cpp.o.d"
  "CMakeFiles/minnoc_core.dir/methodology.cpp.o"
  "CMakeFiles/minnoc_core.dir/methodology.cpp.o.d"
  "CMakeFiles/minnoc_core.dir/partitioner.cpp.o"
  "CMakeFiles/minnoc_core.dir/partitioner.cpp.o.d"
  "CMakeFiles/minnoc_core.dir/route_optimizer.cpp.o"
  "CMakeFiles/minnoc_core.dir/route_optimizer.cpp.o.d"
  "CMakeFiles/minnoc_core.dir/verify.cpp.o"
  "CMakeFiles/minnoc_core.dir/verify.cpp.o.d"
  "CMakeFiles/minnoc_core.dir/workload.cpp.o"
  "CMakeFiles/minnoc_core.dir/workload.cpp.o.d"
  "libminnoc_core.a"
  "libminnoc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minnoc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
