file(REMOVE_RECURSE
  "libminnoc_core.a"
)
