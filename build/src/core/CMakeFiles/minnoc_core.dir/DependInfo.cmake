
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clique_set.cpp" "src/core/CMakeFiles/minnoc_core.dir/clique_set.cpp.o" "gcc" "src/core/CMakeFiles/minnoc_core.dir/clique_set.cpp.o.d"
  "/root/repo/src/core/comm_pattern.cpp" "src/core/CMakeFiles/minnoc_core.dir/comm_pattern.cpp.o" "gcc" "src/core/CMakeFiles/minnoc_core.dir/comm_pattern.cpp.o.d"
  "/root/repo/src/core/design_io.cpp" "src/core/CMakeFiles/minnoc_core.dir/design_io.cpp.o" "gcc" "src/core/CMakeFiles/minnoc_core.dir/design_io.cpp.o.d"
  "/root/repo/src/core/design_network.cpp" "src/core/CMakeFiles/minnoc_core.dir/design_network.cpp.o" "gcc" "src/core/CMakeFiles/minnoc_core.dir/design_network.cpp.o.d"
  "/root/repo/src/core/finalize.cpp" "src/core/CMakeFiles/minnoc_core.dir/finalize.cpp.o" "gcc" "src/core/CMakeFiles/minnoc_core.dir/finalize.cpp.o.d"
  "/root/repo/src/core/methodology.cpp" "src/core/CMakeFiles/minnoc_core.dir/methodology.cpp.o" "gcc" "src/core/CMakeFiles/minnoc_core.dir/methodology.cpp.o.d"
  "/root/repo/src/core/partitioner.cpp" "src/core/CMakeFiles/minnoc_core.dir/partitioner.cpp.o" "gcc" "src/core/CMakeFiles/minnoc_core.dir/partitioner.cpp.o.d"
  "/root/repo/src/core/route_optimizer.cpp" "src/core/CMakeFiles/minnoc_core.dir/route_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/minnoc_core.dir/route_optimizer.cpp.o.d"
  "/root/repo/src/core/verify.cpp" "src/core/CMakeFiles/minnoc_core.dir/verify.cpp.o" "gcc" "src/core/CMakeFiles/minnoc_core.dir/verify.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/minnoc_core.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/minnoc_core.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/minnoc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
