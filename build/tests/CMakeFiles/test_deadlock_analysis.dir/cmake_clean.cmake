file(REMOVE_RECURSE
  "CMakeFiles/test_deadlock_analysis.dir/test_deadlock_analysis.cpp.o"
  "CMakeFiles/test_deadlock_analysis.dir/test_deadlock_analysis.cpp.o.d"
  "test_deadlock_analysis"
  "test_deadlock_analysis.pdb"
  "test_deadlock_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deadlock_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
