file(REMOVE_RECURSE
  "CMakeFiles/test_unidirectional.dir/test_unidirectional.cpp.o"
  "CMakeFiles/test_unidirectional.dir/test_unidirectional.cpp.o.d"
  "test_unidirectional"
  "test_unidirectional.pdb"
  "test_unidirectional[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unidirectional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
