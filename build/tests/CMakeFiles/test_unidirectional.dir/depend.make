# Empty dependencies file for test_unidirectional.
# This may be replaced when dependencies are built.
