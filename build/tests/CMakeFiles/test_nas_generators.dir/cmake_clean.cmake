file(REMOVE_RECURSE
  "CMakeFiles/test_nas_generators.dir/test_nas_generators.cpp.o"
  "CMakeFiles/test_nas_generators.dir/test_nas_generators.cpp.o.d"
  "test_nas_generators"
  "test_nas_generators.pdb"
  "test_nas_generators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nas_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
