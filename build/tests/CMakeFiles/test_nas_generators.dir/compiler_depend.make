# Empty compiler generated dependencies file for test_nas_generators.
# This may be replaced when dependencies are built.
