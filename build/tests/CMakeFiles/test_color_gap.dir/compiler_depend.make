# Empty compiler generated dependencies file for test_color_gap.
# This may be replaced when dependencies are built.
