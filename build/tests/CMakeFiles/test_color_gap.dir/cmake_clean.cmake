file(REMOVE_RECURSE
  "CMakeFiles/test_color_gap.dir/test_color_gap.cpp.o"
  "CMakeFiles/test_color_gap.dir/test_color_gap.cpp.o.d"
  "test_color_gap"
  "test_color_gap.pdb"
  "test_color_gap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_color_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
