file(REMOVE_RECURSE
  "CMakeFiles/test_consolidate.dir/test_consolidate.cpp.o"
  "CMakeFiles/test_consolidate.dir/test_consolidate.cpp.o.d"
  "test_consolidate"
  "test_consolidate.pdb"
  "test_consolidate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consolidate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
