# Empty dependencies file for test_sim_configs.
# This may be replaced when dependencies are built.
