file(REMOVE_RECURSE
  "CMakeFiles/test_sim_configs.dir/test_sim_configs.cpp.o"
  "CMakeFiles/test_sim_configs.dir/test_sim_configs.cpp.o.d"
  "test_sim_configs"
  "test_sim_configs.pdb"
  "test_sim_configs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
