# Empty dependencies file for test_route_optimizer.
# This may be replaced when dependencies are built.
