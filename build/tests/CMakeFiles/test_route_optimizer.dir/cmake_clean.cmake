file(REMOVE_RECURSE
  "CMakeFiles/test_route_optimizer.dir/test_route_optimizer.cpp.o"
  "CMakeFiles/test_route_optimizer.dir/test_route_optimizer.cpp.o.d"
  "test_route_optimizer"
  "test_route_optimizer.pdb"
  "test_route_optimizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
