
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_route_optimizer.cpp" "tests/CMakeFiles/test_route_optimizer.dir/test_route_optimizer.cpp.o" "gcc" "tests/CMakeFiles/test_route_optimizer.dir/test_route_optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/minnoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/minnoc_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/minnoc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/minnoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/minnoc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
