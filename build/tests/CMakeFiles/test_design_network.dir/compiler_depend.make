# Empty compiler generated dependencies file for test_design_network.
# This may be replaced when dependencies are built.
