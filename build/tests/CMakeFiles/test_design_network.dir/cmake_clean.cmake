file(REMOVE_RECURSE
  "CMakeFiles/test_design_network.dir/test_design_network.cpp.o"
  "CMakeFiles/test_design_network.dir/test_design_network.cpp.o.d"
  "test_design_network"
  "test_design_network.pdb"
  "test_design_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_design_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
