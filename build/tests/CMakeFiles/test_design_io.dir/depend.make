# Empty dependencies file for test_design_io.
# This may be replaced when dependencies are built.
