file(REMOVE_RECURSE
  "CMakeFiles/test_design_io.dir/test_design_io.cpp.o"
  "CMakeFiles/test_design_io.dir/test_design_io.cpp.o.d"
  "test_design_io"
  "test_design_io.pdb"
  "test_design_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_design_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
