# Empty compiler generated dependencies file for test_clique_set.
# This may be replaced when dependencies are built.
