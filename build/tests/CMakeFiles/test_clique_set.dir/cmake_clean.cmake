file(REMOVE_RECURSE
  "CMakeFiles/test_clique_set.dir/test_clique_set.cpp.o"
  "CMakeFiles/test_clique_set.dir/test_clique_set.cpp.o.d"
  "test_clique_set"
  "test_clique_set.pdb"
  "test_clique_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clique_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
