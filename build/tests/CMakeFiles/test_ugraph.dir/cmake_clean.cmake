file(REMOVE_RECURSE
  "CMakeFiles/test_ugraph.dir/test_ugraph.cpp.o"
  "CMakeFiles/test_ugraph.dir/test_ugraph.cpp.o.d"
  "test_ugraph"
  "test_ugraph.pdb"
  "test_ugraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ugraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
