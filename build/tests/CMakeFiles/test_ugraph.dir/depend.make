# Empty dependencies file for test_ugraph.
# This may be replaced when dependencies are built.
