file(REMOVE_RECURSE
  "CMakeFiles/minnoc.dir/minnoc.cpp.o"
  "CMakeFiles/minnoc.dir/minnoc.cpp.o.d"
  "minnoc"
  "minnoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minnoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
