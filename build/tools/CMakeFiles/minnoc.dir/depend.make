# Empty dependencies file for minnoc.
# This may be replaced when dependencies are built.
