# Empty compiler generated dependencies file for vc_ablation.
# This may be replaced when dependencies are built.
