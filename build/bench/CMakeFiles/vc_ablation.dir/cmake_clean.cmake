file(REMOVE_RECURSE
  "CMakeFiles/vc_ablation.dir/vc_ablation.cpp.o"
  "CMakeFiles/vc_ablation.dir/vc_ablation.cpp.o.d"
  "vc_ablation"
  "vc_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
