# Empty dependencies file for load_latency.
# This may be replaced when dependencies are built.
