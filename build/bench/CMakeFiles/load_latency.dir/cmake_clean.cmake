file(REMOVE_RECURSE
  "CMakeFiles/load_latency.dir/load_latency.cpp.o"
  "CMakeFiles/load_latency.dir/load_latency.cpp.o.d"
  "load_latency"
  "load_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
