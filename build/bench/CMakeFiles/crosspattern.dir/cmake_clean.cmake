file(REMOVE_RECURSE
  "CMakeFiles/crosspattern.dir/crosspattern.cpp.o"
  "CMakeFiles/crosspattern.dir/crosspattern.cpp.o.d"
  "crosspattern"
  "crosspattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crosspattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
