# Empty compiler generated dependencies file for crosspattern.
# This may be replaced when dependencies are built.
