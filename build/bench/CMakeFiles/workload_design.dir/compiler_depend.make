# Empty compiler generated dependencies file for workload_design.
# This may be replaced when dependencies are built.
