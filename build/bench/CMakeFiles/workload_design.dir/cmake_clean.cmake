file(REMOVE_RECURSE
  "CMakeFiles/workload_design.dir/workload_design.cpp.o"
  "CMakeFiles/workload_design.dir/workload_design.cpp.o.d"
  "workload_design"
  "workload_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
