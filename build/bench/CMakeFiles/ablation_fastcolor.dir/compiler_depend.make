# Empty compiler generated dependencies file for ablation_fastcolor.
# This may be replaced when dependencies are built.
