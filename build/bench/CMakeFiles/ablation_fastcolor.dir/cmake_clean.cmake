file(REMOVE_RECURSE
  "CMakeFiles/ablation_fastcolor.dir/ablation_fastcolor.cpp.o"
  "CMakeFiles/ablation_fastcolor.dir/ablation_fastcolor.cpp.o.d"
  "ablation_fastcolor"
  "ablation_fastcolor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fastcolor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
