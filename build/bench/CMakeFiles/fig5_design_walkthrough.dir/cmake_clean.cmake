file(REMOVE_RECURSE
  "CMakeFiles/fig5_design_walkthrough.dir/fig5_design_walkthrough.cpp.o"
  "CMakeFiles/fig5_design_walkthrough.dir/fig5_design_walkthrough.cpp.o.d"
  "fig5_design_walkthrough"
  "fig5_design_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_design_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
