# Empty dependencies file for fig5_design_walkthrough.
# This may be replaced when dependencies are built.
