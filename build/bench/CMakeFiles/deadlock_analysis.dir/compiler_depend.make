# Empty compiler generated dependencies file for deadlock_analysis.
# This may be replaced when dependencies are built.
