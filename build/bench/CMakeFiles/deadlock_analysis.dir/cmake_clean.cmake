file(REMOVE_RECURSE
  "CMakeFiles/deadlock_analysis.dir/deadlock_analysis.cpp.o"
  "CMakeFiles/deadlock_analysis.dir/deadlock_analysis.cpp.o.d"
  "deadlock_analysis"
  "deadlock_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
