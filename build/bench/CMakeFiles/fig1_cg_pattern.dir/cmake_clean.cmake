file(REMOVE_RECURSE
  "CMakeFiles/fig1_cg_pattern.dir/fig1_cg_pattern.cpp.o"
  "CMakeFiles/fig1_cg_pattern.dir/fig1_cg_pattern.cpp.o.d"
  "fig1_cg_pattern"
  "fig1_cg_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_cg_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
