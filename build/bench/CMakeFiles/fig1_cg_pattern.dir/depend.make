# Empty dependencies file for fig1_cg_pattern.
# This may be replaced when dependencies are built.
