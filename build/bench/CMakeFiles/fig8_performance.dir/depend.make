# Empty dependencies file for fig8_performance.
# This may be replaced when dependencies are built.
