file(REMOVE_RECURSE
  "CMakeFiles/power_comparison.dir/power_comparison.cpp.o"
  "CMakeFiles/power_comparison.dir/power_comparison.cpp.o.d"
  "power_comparison"
  "power_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
