# Empty compiler generated dependencies file for power_comparison.
# This may be replaced when dependencies are built.
