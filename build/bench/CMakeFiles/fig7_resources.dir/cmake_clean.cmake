file(REMOVE_RECURSE
  "CMakeFiles/fig7_resources.dir/fig7_resources.cpp.o"
  "CMakeFiles/fig7_resources.dir/fig7_resources.cpp.o.d"
  "fig7_resources"
  "fig7_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
