# Empty compiler generated dependencies file for fig7_resources.
# This may be replaced when dependencies are built.
